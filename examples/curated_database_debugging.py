"""Tracing errors in a curated database — the paper's motivating use case.

"Provenance information is used in areas like curated databases, data
warehouses and e-science to trace errors, estimate data quality and gain
additional insights about data." (paper §1)

Scenario: a curated protein annotation database integrates records from
three upstream sources of varying quality. A downstream report shows a
suspicious annotation; we use Perm's provenance to find which source
records produced it, then assess how many report rows depend on the
unreliable source — without any manual bookkeeping, because the
provenance is computed from the queries themselves.

Run:  python examples/curated_database_debugging.py
"""

from __future__ import annotations

from repro import Connection, connect


def build_curated_db() -> Connection:
    db = connect()
    db.run(
        """
        CREATE TABLE source_swiss (pid int, gene text, function text);
        CREATE TABLE source_trembl (pid int, gene text, function text);
        CREATE TABLE source_legacy (pid int, gene text, function text);
        CREATE TABLE curators (cid int, name text, trusts text);
        """
    )
    db.load_rows(
        "source_swiss",
        [
            (1, "BRCA1", "DNA repair"),
            (2, "TP53", "tumor suppression"),
            (3, "EGFR", "signal transduction"),
        ],
    )
    db.load_rows(
        "source_trembl",
        [
            (3, "EGFR", "signal transduction"),
            (4, "MYC", "transcription regulation"),
        ],
    )
    db.load_rows(
        "source_legacy",
        [
            (2, "TP53", "unknown"),          # stale annotation!
            (5, "KRAS", "GTPase activity"),
            (6, "ALK", "unknown"),           # stale annotation!
        ],
    )
    db.load_rows("curators", [(1, "ada", "swiss"), (2, "ben", "legacy")])
    # The curated view integrates all three sources (classic curated-DB
    # shape: a union of cleaned upstream feeds).
    db.run(
        """
        CREATE VIEW annotations AS
            SELECT pid, gene, function FROM source_swiss
            UNION SELECT pid, gene, function FROM source_trembl
            UNION SELECT pid, gene, function FROM source_legacy
        """
    )
    return db


def main() -> None:
    db = build_curated_db()

    print("The curated annotation view:")
    print(db.run("SELECT * FROM annotations ORDER BY pid, function").format(), "\n")

    # A report flags genes annotated with 'unknown' function.
    print("Suspicious report rows (function = 'unknown'):")
    report = db.run("SELECT gene FROM annotations WHERE function = 'unknown'")
    print(report.format(), "\n")

    # Step 1: which source produced each suspicious row?
    print("Provenance of the suspicious rows — which source is to blame?")
    prov = db.run(
        "SELECT PROVENANCE gene FROM annotations WHERE function = 'unknown'"
    )
    print(prov.format(), "\n")
    blamed = [
        relation
        for relation in ("swiss", "trembl", "legacy")
        for row in prov.rows
        if any(
            row[prov.schema.index_of(c)] is not None
            for c in prov.provenance_attrs
            if f"source_{relation}" in c
        )
    ]
    print(f"-> every 'unknown' annotation traces to: source_{set(blamed).pop()}\n")

    # Step 2: quantify exposure — how many curated rows depend on the
    # legacy feed at all? Store the provenance eagerly and analyze it
    # with ordinary SQL (the paper's "store provenance for later
    # investigation").
    db.run(
        "CREATE TABLE annotation_prov AS SELECT PROVENANCE pid, gene, function FROM annotations"
    )
    exposure = db.run(
        """
        SELECT count(*) AS legacy_dependent
        FROM annotation_prov
        WHERE prov_source_legacy_pid IS NOT NULL
        """
    )
    total = db.run("SELECT count(*) FROM annotations")
    print(
        f"curated rows depending on the legacy feed: "
        f"{exposure.rows[0][0]} of {total.rows[0][0]}"
    )

    # Step 3: where-provenance — was the *function string itself* copied
    # from the legacy feed, or merely influenced by it?
    copy_prov = db.run(
        "SELECT PROVENANCE ON CONTRIBUTION (COPY PARTIAL) function "
        "FROM annotations WHERE gene = 'TP53'"
    )
    print("\nwhere-provenance of TP53's function values:")
    print(copy_prov.format())


if __name__ == "__main__":
    main()
