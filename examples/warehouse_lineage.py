"""Data-warehouse lineage: drilling from aggregates to base tuples.

The second classic provenance application the paper's §1 names is data
warehousing (the Cui–Widom lineage work [2] it cites is exactly this
setting): a rolled-up report cell looks wrong, and the analyst needs the
base transactions behind it.

Scenario: a retail warehouse aggregates order lines into a revenue
report per market segment. One segment's revenue looks off; Perm's
aggregation-rule provenance returns, for that report row, every
customer, order and line item that contributed — and because provenance
is a relation, the drill-down is just more SQL.

Run:  python examples/warehouse_lineage.py
"""

from __future__ import annotations

from repro import connect
from repro.workloads.tpch import TpchConfig, create_tpch_db


def main() -> None:
    db = create_tpch_db(TpchConfig(customers=25, orders=80, parts=15, seed=7))

    report_sql = """
        SELECT c_mktsegment,
               count(*) AS line_count,
               round(sum(l_extendedprice * (1.0 - l_discount)), 0) AS revenue
        FROM customer
        JOIN orders ON c_custkey = o_custkey
        JOIN lineitem ON o_orderkey = l_orderkey
        GROUP BY c_mktsegment
    """

    print("The revenue report:")
    report = db.run(report_sql + " ORDER BY revenue DESC")
    print(report.format(), "\n")
    suspicious = report.rows[0][0]
    print(f"analyst: segment {suspicious!r} looks too high — drill down.\n")

    # Provenance of the whole report: one row per contributing
    # (customer, order, lineitem) witness combination.
    db.run(f"CREATE TABLE report_prov AS SELECT PROVENANCE {report_sql.strip()[7:]}")

    witnesses = db.run(
        f"""
        SELECT prov_customer_c_name, prov_orders_o_orderkey,
               prov_lineitem_l_linenumber, prov_lineitem_l_extendedprice
        FROM report_prov
        WHERE c_mktsegment = '{suspicious}'
        ORDER BY prov_lineitem_l_extendedprice DESC
        LIMIT 5
        """
    )
    print(f"top 5 contributing line items for {suspicious!r}:")
    print(witnesses.format(), "\n")

    # Lineage analytics over stored provenance: which customers dominate
    # the suspicious cell?
    dominators = db.run(
        f"""
        SELECT prov_customer_c_name AS customer,
               count(*) AS lines,
               round(sum(prov_lineitem_l_extendedprice), 0) AS gross
        FROM report_prov
        WHERE c_mktsegment = '{suspicious}'
        GROUP BY prov_customer_c_name
        ORDER BY gross DESC
        LIMIT 3
        """
    )
    print("customers dominating the cell:")
    print(dominators.format(), "\n")

    # Sanity check the lineage property: replaying the report on only the
    # witness tuples reproduces the suspicious cell exactly.
    replay = connect()
    replay.run(
        """
        CREATE TABLE customer (c_custkey int, c_name text, c_nationkey int,
                               c_acctbal float, c_mktsegment text);
        CREATE TABLE orders (o_orderkey int, o_custkey int, o_orderstatus text,
                             o_totalprice float, o_orderpriority int);
        CREATE TABLE lineitem (l_orderkey int, l_partkey int, l_linenumber int,
                               l_quantity int, l_extendedprice float, l_discount float,
                               l_returnflag text);
        """
    )
    for relation in ("customer", "orders", "lineitem"):
        prefix = f"prov_{relation}_"
        columns = [c for c in db.run("SELECT * FROM report_prov LIMIT 0").columns
                   if c.startswith(prefix)]
        fragments = db.run(
            f"SELECT DISTINCT {', '.join(columns)} FROM report_prov "
            f"WHERE c_mktsegment = '{suspicious}'"
        )
        replay.load_rows(relation, [row for row in fragments.rows
                                    if not all(v is None for v in row)])
    replayed = replay.run(report_sql)
    cell = [row for row in replayed.rows if row[0] == suspicious]
    original_cell = [row for row in report.rows if row[0] == suspicious]
    print("replay on witnesses reproduces the cell:", cell == original_cell)
    assert cell == original_cell


if __name__ == "__main__":
    main()
