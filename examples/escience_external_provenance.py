"""e-science: external provenance and incremental pipelines.

The paper's third application area (§1) is e-science, and its
architectural selling point (§2.2) is that the rewrite rules "are
unaware of how the provenance attributes of their input were produced" —
so Perm can propagate provenance created manually or by *another*
provenance management system, and resume provenance computation from
eagerly stored intermediate results.

Scenario: a sequencing pipeline. Stage 0 is an external tool that
already annotates its output with run identifiers (external provenance).
Stage 1 filters and normalizes inside Perm, storing its provenance
eagerly. Stage 2 aggregates per gene; its provenance query resumes from
stage 1's stored columns instead of recomputing the whole pipeline —
the paper's incremental provenance computation.

Run:  python examples/escience_external_provenance.py
"""

from __future__ import annotations

from repro import attach_external_provenance, connect


def main() -> None:
    db = connect()

    # -- Stage 0: externally annotated measurements -----------------------
    # `run_id` / `machine` were written by the sequencer's own software —
    # not by Perm. We register them as this relation's provenance.
    db.run(
        "CREATE TABLE reads (gene text, expression float, quality int, "
        "run_id text, machine text)"
    )
    db.load_rows(
        "reads",
        [
            ("BRCA1", 12.5, 38, "run-001", "novaseq-A"),
            ("BRCA1", 11.9, 17, "run-002", "novaseq-B"),  # low quality
            ("TP53", 8.4, 35, "run-001", "novaseq-A"),
            ("TP53", 8.9, 36, "run-003", "novaseq-A"),
            ("MYC", 20.1, 12, "run-002", "novaseq-B"),    # low quality
            ("MYC", 19.8, 39, "run-003", "novaseq-A"),
        ],
    )
    attach_external_provenance(db, "reads", ["run_id", "machine"])

    print("Stage 1: quality filter, with the external provenance flowing through")
    stage1 = db.run(
        "SELECT PROVENANCE gene, expression FROM reads WHERE quality >= 30"
    )
    print(stage1.format())
    print("provenance attrs:", list(stage1.provenance_attrs), "\n")

    # Store stage 1 eagerly; the engine registers run_id/machine as the
    # stored table's provenance columns.
    db.run(
        "CREATE TABLE clean_reads AS "
        "SELECT PROVENANCE gene, expression FROM reads WHERE quality >= 30"
    )

    # -- Stage 2: aggregate per gene, resuming provenance ------------------
    print("Stage 2: mean expression per gene — provenance resumes from stage 1")
    stage2 = db.run(
        "SELECT PROVENANCE gene, round(avg(expression), 2) AS mean_expr "
        "FROM clean_reads GROUP BY gene ORDER BY gene"
    )
    print(stage2.format(), "\n")
    assert stage2.provenance_attrs == ("run_id", "machine")

    # Every aggregate row is annotated with the sequencer runs that fed
    # it; asking operational questions is plain SQL over provenance.
    print("Which genes' results depend on machine novaseq-B at all?")
    exposed = db.run(
        "SELECT DISTINCT gene FROM ("
        "  SELECT PROVENANCE gene, avg(expression) AS m "
        "  FROM clean_reads GROUP BY gene) p "
        "WHERE machine = 'novaseq-B'"
    )
    print(exposed.format())
    # The low-quality novaseq-B reads were filtered in stage 1, so no
    # surviving result depends on that machine.
    assert len(exposed) == 0
    print("-> none: the quality filter removed every novaseq-B read.\n")

    print("Which runs feed the BRCA1 result?")
    runs = db.run(
        "SELECT DISTINCT run_id FROM ("
        "  SELECT PROVENANCE gene, avg(expression) AS m "
        "  FROM clean_reads GROUP BY gene) p "
        "WHERE gene = 'BRCA1'"
    )
    print(runs.format())


if __name__ == "__main__":
    main()
