"""Provenance-computation overhead by query class.

The demo paper's companion evaluation measures, on TPC-H, how much more
expensive the rewritten provenance query is than the original, per query
class. We reproduce the *shape* on the TPC-H-like generator:

* SPJ: small constant factor (tuples merely widen);
* AGG: one extra (hash) join back to the input;
* SET: padding + bag union, or join-back;
* NESTED: unnesting turns per-row sublinks into joins — provenance can
  even be *faster* than the original correlated query.

Absolute numbers are a pure-Python interpreter's, not a patched
PostgreSQL's; the ordering and rough ratios are the reproduced result.
"""

from __future__ import annotations

import time

import pytest
from conftest import print_table

from repro.workloads.queries import QUERY_CLASSES, with_provenance

_RESULTS: dict[str, tuple[float, float]] = {}


def _flat_cases():
    for class_name, queries in QUERY_CLASSES.items():
        for name, sql in queries.items():
            yield class_name, name, sql


@pytest.mark.parametrize(
    "class_name,name,sql",
    list(_flat_cases()),
    ids=[f"{c}:{n}" for c, n, _ in _flat_cases()],
)
def test_provenance_overhead(benchmark, tpch_db, class_name, name, sql):
    prov_sql = with_provenance(sql)

    start = time.perf_counter()
    plain = tpch_db.run(sql)
    plain_seconds = time.perf_counter() - start

    result = benchmark(tpch_db.run, prov_sql)

    # Correctness alongside timing: originals preserved.
    width = len(plain.columns)
    assert {tuple(r[:width]) for r in result.rows} == set(plain.rows)
    try:
        prov_seconds = benchmark.stats.stats.mean
    except (AttributeError, TypeError):
        # --benchmark-disable mode: fall back to a single manual timing.
        start = time.perf_counter()
        tpch_db.run(prov_sql)
        prov_seconds = time.perf_counter() - start
    _RESULTS[f"{class_name}:{name}"] = (plain_seconds, prov_seconds)


def test_zz_overhead_report(tpch_db):
    """Prints the per-class overhead table after the sweep (run last)."""
    if not _RESULTS:
        pytest.skip("overhead benchmarks did not run")
    rows = []
    for key, (plain, prov) in sorted(_RESULTS.items()):
        factor = prov / plain if plain > 0 else float("inf")
        rows.append((key, f"{plain * 1000:.2f}", f"{prov * 1000:.2f}", f"{factor:.2f}x"))
    print_table(
        "Provenance overhead by query class (TPC-H-like)",
        ["query", "original ms", "provenance ms", "factor"],
        rows,
    )
