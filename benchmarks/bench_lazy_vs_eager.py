"""Lazy vs eager provenance computation.

The paper (§1): a user can "decide whether he will store the provenance
of a query for later reuse or let the system compute it on the fly".
This bench quantifies the trade-off: eager pays materialization once and
then answers provenance retrievals from the stored relation; lazy pays
the full rewrite+execution on every retrieval. The reproduced shape:
eager wins as soon as provenance is retrieved repeatedly.
"""

from __future__ import annotations

import time

from conftest import print_table

from repro.workloads.forum import scaled_forum_db

PROV_SQL = (
    "SELECT PROVENANCE v1.mId, text, count(*) AS approvals "
    "FROM v1 JOIN approved a ON v1.mId = a.mId GROUP BY v1.mId, text"
)
RETRIEVAL_FILTER = " WHERE prov_approved_uid = 7"


def _fresh_db():
    return scaled_forum_db(messages=200, users=40, imports=100, approvals_per_message=3)


def test_lazy_retrieval(benchmark):
    """Every retrieval recomputes provenance on the fly."""
    db = _fresh_db()

    def lazy():
        return db.run(
            f"SELECT * FROM ({PROV_SQL}) AS p{RETRIEVAL_FILTER}"
        )

    result = benchmark(lazy)
    assert len(result) > 0


def test_eager_retrieval(benchmark):
    """Provenance stored once; retrievals read the materialized table."""
    db = _fresh_db()
    db.run(f"CREATE TABLE prov_store AS {PROV_SQL}")

    def eager():
        return db.run(f"SELECT * FROM prov_store{RETRIEVAL_FILTER}")

    result = benchmark(eager)
    assert len(result) > 0


def test_breakeven_report():
    """Materialization cost vs per-retrieval savings: print the
    break-even retrieval count."""
    db = _fresh_db()

    start = time.perf_counter()
    lazy_result = db.run(f"SELECT * FROM ({PROV_SQL}) AS p{RETRIEVAL_FILTER}")
    lazy_seconds = time.perf_counter() - start

    start = time.perf_counter()
    db.run(f"CREATE TABLE prov_store AS {PROV_SQL}")
    materialize_seconds = time.perf_counter() - start

    start = time.perf_counter()
    eager_result = db.run(f"SELECT * FROM prov_store{RETRIEVAL_FILTER}")
    eager_seconds = time.perf_counter() - start

    assert sorted(eager_result.rows, key=repr) == sorted(lazy_result.rows, key=repr)
    saving = max(lazy_seconds - eager_seconds, 1e-9)
    breakeven = materialize_seconds / saving
    print_table(
        "Lazy vs eager provenance",
        ["metric", "value"],
        [
            ("lazy retrieval", f"{lazy_seconds * 1000:.2f} ms"),
            ("materialization (once)", f"{materialize_seconds * 1000:.2f} ms"),
            ("eager retrieval", f"{eager_seconds * 1000:.2f} ms"),
            ("break-even retrievals", f"{breakeven:.1f}"),
        ],
    )
    # Eager retrieval must beat lazy recomputation per retrieval.
    assert eager_seconds < lazy_seconds
