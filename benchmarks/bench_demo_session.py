"""§3 — the demonstration script, start to finish.

The demo's four parts: query execution, rewrite analysis, implementation
details (we print pipeline internals), and complex queries run by the
audience. This bench replays the whole session against the Figure 1
database.
"""

from __future__ import annotations

from repro.browser import PermBrowser
from repro.workloads.forum import (
    FORUM_QUERIES,
    SQLPLE_AGGREGATION,
    SQLPLE_BASERELATION,
    SQLPLE_QUERYING_PROVENANCE,
)

AUDIENCE_QUERIES = [
    # "Complex queries": what a SIGMOD attendee would try.
    "SELECT PROVENANCE u.name, count(*) AS approvals FROM users u "
    "JOIN approved a ON u.uId = a.uId GROUP BY u.name",
    "SELECT PROVENANCE ON CONTRIBUTION (COPY PARTIAL) text FROM v1",
    "SELECT PROVENANCE name FROM users WHERE uId IN "
    "(SELECT uId FROM approved WHERE mId = 4)",
    "SELECT PROVENANCE mId, text FROM v1 WHERE mId NOT IN "
    "(SELECT mId FROM approved)",
    "SELECT name, cnt FROM (SELECT PROVENANCE count(*) AS cnt, name FROM users u "
    "JOIN approved a ON u.uId = a.uId GROUP BY u.uId, name) p WHERE cnt > 1",
]


def test_part1_query_execution(benchmark, forum_db):
    def run_all():
        out = []
        for name, sql in FORUM_QUERIES.items():
            if name == "q2":
                continue
            out.append(forum_db.run(sql))
        return out

    results = benchmark(run_all)
    assert all(len(r) > 0 for r in results)


def test_part2_rewrite_analysis(benchmark, forum_db):
    browser = PermBrowser(forum_db)

    def analyze_all():
        return [
            browser.run(sql)
            for sql in (SQLPLE_AGGREGATION, SQLPLE_QUERYING_PROVENANCE, SQLPLE_BASERELATION)
        ]

    views = benchmark(analyze_all)
    assert all(view.rewritten_sql for view in views)


def test_part4_audience_queries(benchmark, forum_db):
    def run_audience():
        return [forum_db.run(sql) for sql in AUDIENCE_QUERIES]

    results = benchmark(run_audience)
    # The NOT IN query finds the unapproved messages (mId 1 and 3).
    unapproved = results[3]
    assert sorted(row[0] for row in unapproved.rows) == [1, 3]
