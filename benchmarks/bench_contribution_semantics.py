"""Contribution-semantics comparison: INFLUENCE vs COPY variants.

The paper: "Perm supports ... various contribution semantics" — the user
"can pick the contribution definition that fits his needs". This bench
compares the cost and output of the three semantics on the same query:
identical provenance schema, different masking work and result density.
"""

from __future__ import annotations

import pytest
from conftest import print_table

from repro.workloads.queries import with_provenance

QUERY = (
    "SELECT c_mktsegment, count(*) AS n FROM customer "
    "JOIN orders ON c_custkey = o_custkey GROUP BY c_mktsegment"
)

SEMANTICS = {
    "influence": None,
    "copy-partial": "copy partial",
    "copy-complete": "copy complete",
}


@pytest.mark.parametrize("label", list(SEMANTICS))
def test_contribution_semantics(benchmark, tpch_db, label):
    sql = with_provenance(QUERY, contribution=SEMANTICS[label])
    result = benchmark(tpch_db.run, sql)
    plain = tpch_db.run(QUERY)
    width = len(plain.columns)
    assert {tuple(r[:width]) for r in result.rows} == set(plain.rows)


def test_semantics_density_report(tpch_db):
    """Same schema, different non-NULL density: influence keeps whole
    witnesses, copy-partial only copied cells, copy-complete whole
    tuples of copied-from relations."""
    rows = []
    densities = {}
    for label, contribution in SEMANTICS.items():
        result = tpch_db.run(with_provenance(QUERY, contribution=contribution))
        prov_positions = [result.schema.index_of(a) for a in result.provenance_attrs]
        cells = len(result) * len(prov_positions)
        non_null = sum(
            1 for row in result.rows for p in prov_positions if row[p] is not None
        )
        density = non_null / cells if cells else 0.0
        densities[label] = density
        rows.append((label, len(result), f"{density:.2%}"))
    print_table(
        "Contribution semantics: provenance density",
        ["semantics", "rows", "non-NULL provenance cells"],
        rows,
    )
    assert densities["influence"] >= densities["copy-complete"] >= densities["copy-partial"]
