"""Prepared statements and the plan cache vs the cold pipeline.

Extends the Figure 3 stage-timing story: the paper's architecture runs
Parser & Analyzer -> Provenance Rewriter -> Planner -> Executor for every
query. The DB-API front end splits *prepare* from *execute*, so a
repeated parameterized provenance query pays the front of the pipeline
once. This bench measures three ways of running the same parameterized
provenance query many times:

* cold      — a fresh pipeline run per call (``profile``, no cache);
* cached    — ``cursor.execute`` of identical SQL text (plan-cache hit);
* prepared  — an explicit ``PreparedStatement`` (execute stage only);

and reports the per-stage savings that explain the difference.
"""

from __future__ import annotations

import pytest
from conftest import print_table

from repro.workloads.forum import SQLPLE_AGGREGATION

QUERY = (
    "SELECT PROVENANCE count(*) AS cnt, text "
    "FROM v1 JOIN approved a ON v1.mId = a.mId "
    "WHERE a.uId > ? GROUP BY v1.mId, text"
)


def _params(i: int) -> tuple[int]:
    return (i % 3,)


def test_cold_pipeline(benchmark, forum_db_large):
    """Baseline: every call re-runs parse/analyze/rewrite/optimize/plan."""
    counter = [0]

    def run():
        counter[0] += 1
        return forum_db_large.profile(QUERY, params=_params(counter[0])).result

    result = benchmark(run)
    assert result is not None


def test_cached_cursor_execute(benchmark, forum_db_large):
    """Repeated cursor.execute of one SQL text: plan-cache hits."""
    cursor = forum_db_large.cursor()
    counter = [0]
    hits_before = forum_db_large.plan_cache.hits
    cursor.execute(QUERY, _params(0))  # warm the cache

    def run():
        counter[0] += 1
        return cursor.execute(QUERY, _params(counter[0])).relation

    result = benchmark(run)
    assert result is not None
    assert forum_db_large.plan_cache.hits > hits_before


def test_prepared_statement(benchmark, forum_db_large):
    """Explicit prepare once, execute many."""
    statement = forum_db_large.prepare(QUERY)
    counter = [0]
    before = forum_db_large.counters.snapshot()

    def run():
        counter[0] += 1
        return statement.execute(_params(counter[0]))

    result = benchmark(run)
    assert result is not None
    # Only the execute stage moved.
    assert forum_db_large.counters.prepared_since(before) == 0


def test_per_stage_savings(forum_db_large, capsys):
    """Quantify what prepare-once removes from the hot path (the Figure 3
    stage table, split into pay-once vs pay-per-execute)."""
    profile = forum_db_large.profile(QUERY, params=_params(1))
    front = [t for t in profile.timings if t.name != "execute"]
    execute = profile.timing("execute")
    front_total = sum(t.seconds for t in front)

    rows = [(t.name, f"{t.seconds * 1000:.3f} ms", "once") for t in front]
    rows.append(("execute", f"{execute * 1000:.3f} ms", "per call"))
    rows.append(("prepared saves/call", f"{front_total * 1000:.3f} ms", ""))
    with capsys.disabled():
        print_table(
            "prepared+cached vs cold pipeline: per-stage cost",
            ["stage", "time", "paid"],
            rows,
        )
    assert front_total > 0 and execute > 0


def test_prepared_matches_cold_results(forum_db_large):
    """Sanity: the fast path returns exactly what the cold path returns."""
    statement = forum_db_large.prepare(QUERY)
    for i in range(4):
        cold = forum_db_large.profile(QUERY, params=_params(i)).result
        fast = statement.execute(_params(i))
        assert sorted(fast.rows, key=repr) == sorted(cold.rows, key=repr)
        assert fast.columns == cold.columns


def test_cache_and_counters_report(forum_db_large, capsys):
    """Surface the plan-cache stats after the benchmark workload ran."""
    stats = forum_db_large.plan_cache.stats()
    counters = forum_db_large.counters
    rows = [
        ("plan-cache hits", stats["hits"]),
        ("plan-cache misses", stats["misses"]),
        ("analyze runs", counters.analyze),
        ("executions", counters.execute),
    ]
    with capsys.disabled():
        print_table("pipeline counters", ["metric", "value"], rows)
    assert counters.execute >= counters.analyze


@pytest.mark.parametrize("sql", [SQLPLE_AGGREGATION])
def test_unparameterized_queries_also_cache(benchmark, forum_db_large, sql):
    """The cache is not params-only: identical plain SQL hits too."""
    forum_db_large.cursor().execute(sql)
    misses_before = forum_db_large.plan_cache.misses

    def run():
        return forum_db_large.cursor().execute(sql).relation

    result = benchmark(run)
    assert result is not None
    assert forum_db_large.plan_cache.misses == misses_before
