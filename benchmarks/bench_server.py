"""Server benchmark: many concurrent wire clients against one database.

Two experiments:

1. **Sustained concurrency** — ``$BENCH_SERVER_SESSIONS`` (default 120)
   simultaneous socket sessions run a mixed workload (70% point/aggregate
   reads, 30% single-row transfer writes) against one shared database.
   The server must answer every request (admission control is sized to
   queue, not reject), and reports p50/p99 latency from its own
   reservoir plus wall-clock throughput.

2. **Conflict granularity** — the same disjoint-row write workload runs
   against a row-granularity and a table-granularity server. Every
   session updates only its own row, with barriers forcing all
   transactions to overlap: under table-level conflicts all but the
   first committer of each round abort; under row-level conflicts the
   writes are disjoint and *nobody* aborts. The benchmark asserts the
   row-level abort count is strictly smaller.

Results go to ``BENCH_server.json`` (override with $BENCH_SERVER_JSON)
so CI can archive the concurrency trajectory across PRs.

Reproduce with::

    PYTHONPATH=src python -m pytest benchmarks/bench_server.py -s
"""

from __future__ import annotations

import json
import os
import random
import threading
import time

from conftest import print_table

from repro import SerializationError, ServerBusy
from repro.engine.database import Database
from repro.server import PermServer, ServerClient, ServerThread

SESSIONS = int(os.environ.get("BENCH_SERVER_SESSIONS", "120"))
OPS_PER_SESSION = int(os.environ.get("BENCH_SERVER_OPS", "20"))
GRANULARITY_SESSIONS = int(os.environ.get("BENCH_SERVER_GRAN_SESSIONS", "8"))
GRANULARITY_ROUNDS = int(os.environ.get("BENCH_SERVER_ROUNDS", "12"))

ACCOUNTS = 64
WRITE_FRACTION = 0.3


def _artifact_path() -> str:
    return os.environ.get("BENCH_SERVER_JSON", "BENCH_server.json")


def _merge_artifact(update: dict) -> None:
    path = _artifact_path()
    payload = {}
    if os.path.exists(path):
        with open(path) as handle:
            payload = json.load(handle)
    payload.update(update)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"\nwrote {path}")


def _start_server(granularity: str, sessions: int) -> PermServer:
    return PermServer(
        database=Database(conflict_granularity=granularity),
        max_sessions=sessions + 8,
        max_workers=8,
        max_pending=sessions * 2 + 32,
    )


def _retrying(call, attempts: int = 50):
    for _ in range(attempts):
        try:
            return call()
        except (SerializationError, ServerBusy):
            time.sleep(0.001)
    raise AssertionError(f"gave up after {attempts} retries")


# ---------------------------------------------------------------------------
# Experiment 1: sustained mixed read/write concurrency
# ---------------------------------------------------------------------------


def test_sustained_concurrent_sessions():
    """>= 100 concurrent sessions of mixed readers/writers, served
    completely; p50/p99 from the server's own latency reservoir."""
    server = _start_server("row", SESSIONS)
    failures: list[BaseException] = []
    with ServerThread(server):
        with ServerClient("127.0.0.1", server.port) as setup:
            setup.query("CREATE TABLE accounts (id int, balance int)")
            for i in range(ACCOUNTS):
                setup.query("INSERT INTO accounts VALUES (?, ?)", [i, 100])

        ready = threading.Barrier(SESSIONS, timeout=120)

        def worker(seed: int) -> None:
            rng = random.Random(seed)
            try:
                with ServerClient("127.0.0.1", server.port) as c:
                    ready.wait()  # all sessions live before anyone starts
                    for _ in range(OPS_PER_SESSION):
                        if rng.random() < WRITE_FRACTION:
                            src, dst = rng.sample(range(ACCOUNTS), 2)
                            amount = rng.randint(1, 5)
                            # Autocommit single-row writes: conflicts
                            # retry server-side (the retries counter).
                            _retrying(
                                lambda: c.query(
                                    "UPDATE accounts SET balance = balance - ? "
                                    "WHERE id = ?",
                                    [amount, src],
                                )
                            )
                            _retrying(
                                lambda: c.query(
                                    "UPDATE accounts SET balance = balance + ? "
                                    "WHERE id = ?",
                                    [amount, dst],
                                )
                            )
                        else:
                            account = rng.randrange(ACCOUNTS)
                            _retrying(
                                lambda: c.query(
                                    "SELECT balance FROM accounts WHERE id = ?",
                                    [account],
                                )
                            )
            except BaseException as exc:  # noqa: BLE001 - reported below
                failures.append(exc)

        threads = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(SESSIONS)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        wall = time.perf_counter() - started

        assert not failures, failures[:3]
        with ServerClient("127.0.0.1", server.port) as check:
            total = check.query("SELECT SUM(balance) FROM accounts").rows[0][0]
            stats = check.stats()

    assert total == ACCOUNTS * 100, "transfers must preserve the total balance"
    snap = stats["server"]
    assert snap["sessions_total"] >= SESSIONS
    assert snap["sessions_rejected"] == 0, "admission control should queue, not reject"
    latency = snap["latency"]
    assert latency["p50_ms"] is not None and latency["p99_ms"] is not None

    results = {
        "sessions": SESSIONS,
        "ops_per_session": OPS_PER_SESSION,
        "queries": snap["queries"],
        "wall_s": round(wall, 3),
        "throughput_qps": round(snap["queries"] / wall, 1),
        "p50_ms": latency["p50_ms"],
        "p99_ms": latency["p99_ms"],
        "conflicts": snap["conflicts"],
        "retries": snap["retries"],
        "gc": stats["gc"],
    }
    print_table(
        f"mixed workload, {SESSIONS} concurrent sessions",
        ["metric", "value"],
        sorted((k, v) for k, v in results.items() if k != "gc"),
    )
    _merge_artifact({"sustained": results})


# ---------------------------------------------------------------------------
# Experiment 2: row-level vs table-level conflict granularity
# ---------------------------------------------------------------------------


def _disjoint_row_aborts(granularity: str) -> int:
    """Sessions update disjoint rows in barrier-aligned transactions;
    returns how many commits aborted with a serialization failure."""
    sessions = GRANULARITY_SESSIONS
    server = _start_server(granularity, sessions)
    aborts = [0] * sessions
    failures: list[BaseException] = []
    barrier = threading.Barrier(sessions, timeout=120)
    with ServerThread(server):
        with ServerClient("127.0.0.1", server.port) as setup:
            setup.query("CREATE TABLE counters (id int, n int)")
            for i in range(sessions):
                setup.query("INSERT INTO counters VALUES (?, 0)", [i])

        def worker(me: int) -> None:
            try:
                with ServerClient("127.0.0.1", server.port) as c:
                    for _ in range(GRANULARITY_ROUNDS):
                        barrier.wait()  # everyone begins together...
                        c.begin()
                        c.query(
                            "UPDATE counters SET n = n + 1 WHERE id = ?", [me]
                        )
                        barrier.wait()  # ...and overlaps through commit
                        try:
                            c.commit()
                        except SerializationError:
                            aborts[me] += 1
            except BaseException as exc:  # noqa: BLE001 - reported below
                failures.append(exc)

        threads = [
            threading.Thread(target=worker, args=(me,)) for me in range(sessions)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
    assert not failures, failures[:3]
    return sum(aborts)


def test_row_granularity_aborts_fewer_disjoint_writers():
    """The PR's headline concurrency claim: on a disjoint-row write
    workload, row-level conflict detection aborts strictly fewer
    transactions than table-level first-committer-wins."""
    row_aborts = _disjoint_row_aborts("row")
    table_aborts = _disjoint_row_aborts("table")

    # Fully-overlapped rounds: table granularity must abort someone...
    assert table_aborts > 0
    # ...while disjoint rows never truly conflict.
    assert row_aborts < table_aborts
    assert row_aborts == 0

    results = {
        "sessions": GRANULARITY_SESSIONS,
        "rounds": GRANULARITY_ROUNDS,
        "commits_attempted": GRANULARITY_SESSIONS * GRANULARITY_ROUNDS,
        "row_aborts": row_aborts,
        "table_aborts": table_aborts,
    }
    print_table(
        "disjoint-row writers: aborts by conflict granularity",
        ["metric", "value"],
        sorted(results.items()),
    )
    _merge_artifact({"granularity": results})
