"""Cost-based optimizer benchmark: join ordering on provenance join-backs.

The acceptance experiment re-creates the paper's headline scenario: a
3-relation join under ``SELECT PROVENANCE`` with GROUP BY — the rewrite
joins the original aggregate back to the doubled-width rewritten input —
whose *syntactic* (left-deep) join order materializes a fanned-out
intermediate that the cost-based order avoids entirely. At 100k rows per
big table the row engine must run at least 2x faster with the optimizer
on (``optimizer="cost"``) than off (``optimizer="rules"``), with
bit-identical results — row order included — across the row, vectorized
and sqlite engines and across both optimizer modes.

A second experiment measures redundant join-back elimination: a nested
provenance query whose provenance columns the outer query projects away
collapses to the original query (no join at all).

The measured numbers are also written to ``BENCH_optimizer.json``
(override the path with $BENCH_OPTIMIZER_JSON) so CI can archive the
perf trajectory across PRs.

Reproduce with::

    PYTHONPATH=src python -m pytest benchmarks/bench_optimizer.py -s
"""

from __future__ import annotations

import json
import os
import random
import time

from conftest import print_table

import repro

ENGINES = ("row", "vectorized", "sqlite")
MODES = ("cost", "rules")

ROWS = 100_000
FAN = ROWS // 4  # key duplication: the left-deep intermediate fans out 4x

JOINBACK_SQL = (
    "SELECT PROVENANCE s.label, count(*) AS n FROM big1 b1 "
    "JOIN big2 b2 ON b1.k = b2.k JOIN small s ON b2.j = s.j "
    "WHERE s.seg = 'x' GROUP BY s.label"
)

ELIMINATION_SQL = (
    "SELECT c0 FROM (SELECT PROVENANCE k AS c0 FROM elim ORDER BY k LIMIT 200) q"
)


def _chain_db(engine: str, mode: str) -> "repro.Connection":
    conn = repro.connect(engine=engine, optimizer=mode)
    conn.run(
        """
        CREATE TABLE big1 (k int, v int, pad text);
        CREATE TABLE big2 (k int, j int, pad text);
        CREATE TABLE small (j int, seg text, label text);
        CREATE TABLE elim (k int, payload text);
        """
    )
    rng = random.Random(42)
    conn.load_rows(
        "big1", [(i % FAN, rng.randrange(1000), "b1pad") for i in range(ROWS)]
    )
    conn.load_rows(
        "big2", [(i % FAN, rng.randrange(100), "b2pad") for i in range(ROWS)]
    )
    conn.load_rows(
        "small", [(j, "x" if j < 5 else "y", f"l{j}") for j in range(100)]
    )
    conn.load_rows("elim", [(i, f"p{i}") for i in range(20_000)])
    return conn


def _time_query(conn, sql: str, repeat: int = 3) -> tuple[float, object]:
    """Best-of-*repeat* wall time (seconds) with a warm plan cache."""
    cursor = conn.execute(sql)  # warm-up: plan cached after this
    rows = cursor.fetchall()
    description = cursor.description
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        rows = conn.execute(sql).fetchall()
        best = min(best, time.perf_counter() - start)
    return best, (rows, description)


def _artifact_path() -> str:
    return os.environ.get("BENCH_OPTIMIZER_JSON", "BENCH_optimizer.json")


def test_provenance_joinback_speedup_and_identity():
    """The acceptance experiment, plus the six-way identity check and
    the BENCH_optimizer.json artifact."""
    connections = {
        (engine, mode): _chain_db(engine, mode)
        for engine in ENGINES
        for mode in MODES
    }

    times: dict[tuple[str, str], float] = {}
    outcomes: dict[tuple[str, str], object] = {}
    for key, conn in connections.items():
        times[key], outcomes[key] = _time_query(conn, JOINBACK_SQL)

    # Bit-identical results — rows in identical order, identical cursor
    # description — across every engine x optimizer-mode combination.
    baseline = outcomes[("row", "cost")]
    for key, outcome in outcomes.items():
        assert outcome == baseline, f"{key} disagrees with row/cost"

    row_conn = connections[("row", "cost")]
    assert row_conn.counters.joins_reordered >= 2, (
        "expected both the original and the rewritten join region to be "
        f"reordered, counters: {row_conn.counters}"
    )
    assert row_conn.counters.columns_pruned > 0

    speedup = times[("row", "rules")] / times[("row", "cost")]
    print_table(
        f"Provenance join-back, 3 relations, {ROWS:,} rows/table (best of 3)",
        ["engine", "optimizer off", "optimizer on", "speedup"],
        [
            (
                engine,
                f"{times[(engine, 'rules')] * 1000:.1f} ms",
                f"{times[(engine, 'cost')] * 1000:.1f} ms",
                f"{times[(engine, 'rules')] / times[(engine, 'cost')]:.2f}x",
            )
            for engine in ENGINES
        ],
    )

    # Join-back elimination experiment (row engine): the outer query
    # drops the provenance columns, so the rewrite's join-back on the
    # (unique) key is removed outright.
    elim_times = {
        mode: _time_query(connections[("row", mode)], ELIMINATION_SQL)
        for mode in MODES
    }
    assert elim_times["cost"][1] == elim_times["rules"][1]
    elim_speedup = elim_times["rules"][0] / elim_times["cost"][0]
    print_table(
        "Redundant join-back elimination (row engine, 20k-row base)",
        ["optimizer", "best of 3", "speedup"],
        [
            ("rules", f"{elim_times['rules'][0] * 1000:.1f} ms", "1.00x"),
            ("cost", f"{elim_times['cost'][0] * 1000:.1f} ms", f"{elim_speedup:.2f}x"),
        ],
    )

    artifact = {
        "rows_per_big_table": ROWS,
        "query": JOINBACK_SQL,
        "joinback": {
            engine: {
                "optimizer_off_s": times[(engine, "rules")],
                "optimizer_on_s": times[(engine, "cost")],
                "speedup": times[(engine, "rules")] / times[(engine, "cost")],
            }
            for engine in ENGINES
        },
        "joinback_elimination": {
            "query": ELIMINATION_SQL,
            "optimizer_off_s": elim_times["rules"][0],
            "optimizer_on_s": elim_times["cost"][0],
            "speedup": elim_speedup,
        },
        "counters_row_cost": {
            "joins_reordered": row_conn.counters.joins_reordered,
            "joinbacks_eliminated": row_conn.counters.joinbacks_eliminated,
            "columns_pruned": row_conn.counters.columns_pruned,
        },
    }
    with open(_artifact_path(), "w") as handle:
        json.dump(artifact, handle, indent=2)
    print(f"\nwrote {_artifact_path()}")

    assert speedup >= 2.0, (
        f"cost-based join ordering only {speedup:.2f}x faster on the "
        "3-relation provenance join-back (>= 2x required)"
    )
