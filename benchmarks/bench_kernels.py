"""Typed-kernel microbenchmarks for the vectorized engine.

Times the bulk columnar kernels in ``repro.executor.columns`` against
equivalent per-element Python loops over the same data — the speedup
the typed-buffer representation buys before any operator logic is
involved. Also times the mandatory exact spill path (an int64-escaping
operand forces Python-object evaluation) so its cost stays visible.

Results go to ``BENCH_kernels.json`` (override with $BENCH_KERNELS_JSON)
so CI can archive the kernel trajectory across PRs.

Reproduce with::

    PYTHONPATH=src python -m pytest benchmarks/bench_kernels.py -s
"""

from __future__ import annotations

import json
import os
import time

import pytest
from conftest import print_table

from repro.datatypes import SQLType
from repro.executor.columns import (
    HAVE_NUMPY,
    INT64_MAX,
    build_typed_column,
    int_sum_exact,
    typed_extreme,
    vec_and,
    vec_arith,
    vec_cmp_const,
)

ROWS = int(os.environ.get("BENCH_KERNEL_ROWS", "1000000"))
REPEATS = 5


def _artifact_path() -> str:
    return os.environ.get("BENCH_KERNELS_JSON", "BENCH_kernels.json")


def _best(func) -> float:
    samples = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        func()
        samples.append(time.perf_counter() - start)
    return min(samples)


def test_kernel_microbench():
    ints = [i % 100_000 for i in range(ROWS)]
    floats = [(i * 7 % 10_000) / 10.0 for i in range(ROWS)]
    int_col = build_typed_column(ints, SQLType.INT)
    float_col = build_typed_column(floats, SQLType.FLOAT)
    assert int_col is not None and float_col is not None

    mask_a = vec_cmp_const(int_col, "<", 50_000)
    mask_b = vec_cmp_const(int_col, ">", 10_000)

    cases = {
        "build_i64": lambda: build_typed_column(ints, SQLType.INT),
        "arith_col_col_add": lambda: vec_arith("+", int_col, int_col, ROWS),
        "arith_col_scalar_mul": lambda: vec_arith("*", int_col, 3, ROWS),
        "arith_f64_add": lambda: vec_arith("+", float_col, float_col, ROWS),
        "cmp_const_lt": lambda: vec_cmp_const(int_col, "<", 50_000),
        "and_masks": lambda: vec_and(mask_a, mask_b),
        "sum_i64_exact": lambda: int_sum_exact(int_col),
        "max_i64": lambda: typed_extreme(int_col, True),
        # The mandatory spill: the scalar operand exceeds int64, so the
        # kernel must produce exact Python bignums instead of a buffer.
        "arith_spill_bignum": lambda: vec_arith("+", int_col, INT64_MAX, ROWS),
    }
    baselines = {
        "arith_col_col_add": lambda: [v + v for v in ints],
        "arith_col_scalar_mul": lambda: [v * 3 for v in ints],
        "arith_f64_add": lambda: [v + v for v in floats],
        "cmp_const_lt": lambda: [v < 50_000 for v in ints],
        "sum_i64_exact": lambda: sum(ints),
        "max_i64": lambda: max(ints),
    }

    if HAVE_NUMPY:
        # The machine paths must engage: a None return means the kernel
        # declined and the engine would fall back per-element.
        for name in ("arith_col_col_add", "cmp_const_lt", "and_masks"):
            assert cases[name]() is not None, name
        assert cases["arith_spill_bignum"]()[0] == ints[0] + INT64_MAX

    results: dict[str, dict] = {}
    table = []
    for name, func in cases.items():
        kernel_s = _best(func)
        entry = {"kernel_ms": round(kernel_s * 1000, 3)}
        speedup = ""
        if name in baselines:
            base_s = _best(baselines[name])
            entry["python_ms"] = round(base_s * 1000, 3)
            entry["speedup"] = round(base_s / kernel_s, 2)
            speedup = f"{entry['speedup']:.1f}x"
        results[name] = entry
        table.append(
            (
                name,
                f"{entry['kernel_ms']:.2f}",
                f"{entry.get('python_ms', ''):}",
                speedup,
            )
        )
    print_table(
        f"Columnar kernels over {ROWS:,} rows (numpy={'on' if HAVE_NUMPY else 'off'})",
        ["kernel", "kernel ms", "python ms", "speedup"],
        table,
    )

    path = _artifact_path()
    payload = {}
    if os.path.exists(path):
        with open(path) as handle:
            payload = json.load(handle)
    payload["kernels"] = {"rows": ROWS, "numpy": HAVE_NUMPY, "results": results}
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"\nwrote {path}")

    if HAVE_NUMPY:
        # Advisory floor, far under the measured margin: bulk int
        # arithmetic must clearly beat the per-element loop.
        assert results["arith_col_col_add"]["speedup"] >= 2.0
