"""Row vs vectorized engine comparison.

The headline experiment: a 100k-row scan/filter/aggregate query must run
at least 2x faster on the vectorized engine — per-tuple interpreter
overhead is the row engine's dominant cost, and batch-at-a-time
execution amortizes it. The workload sweeps then report the speedup
across the TPC-H-like and forum query classes, with provenance rewriting
on and off (the rewritten plans are joins + wide projections, so they
vectorize too).

Reproduce with::

    PYTHONPATH=src python -m pytest benchmarks/bench_vectorized.py -s
"""

from __future__ import annotations

import random
import time

from conftest import print_table

import repro
from repro.workloads.forum import FORUM_QUERIES, create_forum_db
from repro.workloads.queries import QUERY_CLASSES, with_provenance
from repro.workloads.tpch import TpchConfig, create_tpch_db

ENGINES = ("row", "vectorized")

SCAN_ROWS = 100_000
SCAN_FILTER_AGG = (
    "SELECT count(*), sum(x), min(x), max(x) "
    "FROM readings WHERE x > 250.0 AND k % 2 = 0"
)


def _readings_db(engine: str) -> "repro.Connection":
    conn = repro.connect(engine=engine)
    conn.run("CREATE TABLE readings (k int, grp int, x float, tag text)")
    rng = random.Random(7)
    conn.load_rows(
        "readings",
        [
            (i, rng.randrange(50), rng.random() * 1000, rng.choice("abcde"))
            for i in range(SCAN_ROWS)
        ],
    )
    return conn


def _time_query(conn, sql: str, repeat: int = 5) -> tuple[float, list]:
    """Best-of-*repeat* wall time (seconds) with a warm plan cache."""
    result = conn.run(sql)  # warm-up: plan is cached after this
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        result = conn.run(sql)
        best = min(best, time.perf_counter() - start)
    return best, result.rows


def test_scan_filter_aggregate_speedup():
    """The acceptance experiment: >= 7x on 100k-row scan/filter/agg.

    Best-of-5 per engine keeps the ratio stable on noisy machines. The
    list-based vectorized engine measured ~3.7x on an idle host; the
    typed columnar kernels (packed int64/float64 buffers + the
    per-version scan cache) raised that to ~60x, so the gate holds a
    margin well below the measurement but above what object columns
    could ever reach.
    """
    times, rows = {}, {}
    for engine in ENGINES:
        conn = _readings_db(engine)
        times[engine], rows[engine] = _time_query(conn, SCAN_FILTER_AGG)
    speedup = times["row"] / times["vectorized"]
    print_table(
        f"Scan/filter/aggregate over {SCAN_ROWS:,} rows",
        ["engine", "best of 5", "speedup"],
        [
            ("row", f"{times['row'] * 1000:.1f} ms", "1.00x"),
            ("vectorized", f"{times['vectorized'] * 1000:.1f} ms", f"{speedup:.2f}x"),
        ],
    )
    assert rows["row"] == rows["vectorized"], "engines disagree on results"
    assert speedup >= 7.0, (
        f"vectorized engine only {speedup:.2f}x faster on the 100k-row "
        "scan/filter/aggregate query (>= 7x required with typed columnar kernels)"
    )


def _workload_sweep(title: str, databases: dict, queries: dict[str, str]) -> None:
    rows = []
    for name, sql in queries.items():
        for provenance in (False, True):
            query = with_provenance(sql) if provenance else sql
            timings, results = {}, {}
            for engine in ENGINES:
                timings[engine], results[engine] = _time_query(databases[engine], query)
            assert results["row"] == results["vectorized"], (
                f"engines disagree on {name} (provenance={provenance})"
            )
            rows.append(
                (
                    name,
                    "on" if provenance else "off",
                    f"{timings['row'] * 1000:.2f}",
                    f"{timings['vectorized'] * 1000:.2f}",
                    f"{timings['row'] / timings['vectorized']:.2f}x",
                )
            )
    print_table(title, ["query", "prov", "row ms", "vec ms", "speedup"], rows)


def test_tpch_workload_speedups():
    """Row-vs-vectorized across the TPC-H query classes, provenance
    rewriting on and off."""
    databases = {
        engine: create_tpch_db(TpchConfig(), engine=engine) for engine in ENGINES
    }
    queries = {
        f"{class_name.lower()}:{name}": sql
        for class_name, class_queries in QUERY_CLASSES.items()
        for name, sql in list(class_queries.items())[:2]
    }
    _workload_sweep("TPC-H row vs vectorized", databases, queries)


def test_forum_workload_speedups():
    """Row-vs-vectorized on the paper's forum queries (scaled instance)."""
    from repro.workloads.forum import scaled_forum_db

    databases = {
        engine: scaled_forum_db(
            messages=800, users=80, imports=400, engine=engine
        )
        for engine in ENGINES
    }
    queries = {"q1": FORUM_QUERIES["q1"], "q3": FORUM_QUERIES["q3"]}
    _workload_sweep("Forum row vs vectorized", databases, queries)
