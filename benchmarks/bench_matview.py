"""Materialized-view maintenance: incremental vs recompute vs no view.

The headline experiment behind ``CREATE MATERIALIZED VIEW``: a
dashboard query (selective join over a fact table) is read repeatedly
while a stream of small committed updates lands on the base tables.
Three strategies serve the dashboard:

1. ``no_view`` — every read runs the unfolded join.
2. ``recompute`` — a matview serves the read, but its maintenance
   program is disabled, so every commit marks it stale and the next
   read pays a full recompute (the engine's genuine fallback path for
   non-delta-safe shapes, forced here on a delta-safe view so all
   three strategies answer the *same* query).
3. ``incremental`` — the maintainer folds each commit's delta into the
   stored heap; reads are plain heap scans and never recompute
   (asserted via the pipeline counters).

The acceptance bound: dashboard reads under the incremental strategy
must be at least 5x faster than under forced recomputation, and the
whole stream (updates + reads) must not be slower. A second experiment
runs a genuinely concurrent stream — a writer session committing on one
thread while a reader session times dashboard reads on another — and
records the read-latency distribution. Results land in
``BENCH_matview.json`` (override with $BENCH_MATVIEW_JSON).

Reproduce with::

    PYTHONPATH=src python -m pytest benchmarks/bench_matview.py -s
"""

from __future__ import annotations

import json
import os
import random
import threading
import time

from conftest import print_table

import repro
from repro.engine.database import Database

BASE_ROWS = int(os.environ.get("BENCH_MATVIEW_ROWS", "20000"))
GROUPS = 50
CYCLES = int(os.environ.get("BENCH_MATVIEW_CYCLES", "25"))
# Dashboards are read more often than their base tables change: several
# viewers poll between update batches.
READS_PER_CYCLE = 4

DASH_SQL = (
    "SELECT e.id, e.val, d.label FROM events e "
    "JOIN dims d ON d.grp = e.grp WHERE e.val >= 980"
)
CREATE_MV = f"CREATE MATERIALIZED VIEW dash AS {DASH_SQL}"


def _artifact_path() -> str:
    return os.environ.get("BENCH_MATVIEW_JSON", "BENCH_matview.json")


def _dashboard_conn() -> "repro.Connection":
    conn = repro.connect()
    conn.run("CREATE TABLE events (id int, grp int, val int)")
    conn.run("CREATE TABLE dims (grp int, label text)")
    rng = random.Random(11)
    conn.load_rows(
        "events",
        [(i, rng.randrange(GROUPS), rng.randrange(1000)) for i in range(1, BASE_ROWS + 1)],
    )
    conn.load_rows("dims", [(g, f"g{g}") for g in range(GROUPS)])
    return conn


def _stream(seed: int) -> list[list[str]]:
    """The committed-update stream: identical for every strategy."""
    rng = random.Random(seed)
    next_id = BASE_ROWS
    batches = []
    for cycle in range(CYCLES):
        values = ", ".join(
            f"({next_id + i + 1}, {rng.randrange(GROUPS)}, {rng.randrange(1000)})"
            for i in range(3)
        )
        next_id += 3
        batch = [
            f"INSERT INTO events VALUES {values}",
            f"UPDATE events SET val = {rng.randrange(1000)} "
            f"WHERE id = {rng.randrange(1, next_id)}",
        ]
        if cycle % 4 == 0:
            batch.append(f"DELETE FROM events WHERE id = {rng.randrange(1, next_id)}")
        batches.append(batch)
    return batches


def _run_stream(mode: str) -> dict:
    conn = _dashboard_conn()
    if mode != "no_view":
        conn.run(CREATE_MV)
    if mode == "recompute":
        # Disabling delta maintenance forces the engine's genuine
        # fallback: every commit marks the view stale, every read after
        # a commit pays a full recompute. (REFRESH rebuilds the
        # maintenance program, so the maintainer itself is disabled
        # rather than the entry's delta_safe flag.)
        conn.database.matview_maintainer._maintain = lambda *args, **kwargs: False
    read_sql = DASH_SQL if mode == "no_view" else "SELECT * FROM dash"
    conn.run(read_sql)  # warm the plan cache before timing

    write_s = read_s = 0.0
    reads = 0
    for batch in _stream(seed=23):
        start = time.perf_counter()
        for sql in batch:
            conn.run(sql)
        write_s += time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(READS_PER_CYCLE):
            rows = conn.run(read_sql).rows
        read_s += time.perf_counter() - start
        reads += READS_PER_CYCLE

    counters = conn.pipeline.counters
    if mode == "incremental":
        assert counters.matview_refreshes == 0
        assert counters.matview_auto_refreshes == 0, (
            "the delta-safe dashboard view must be maintained, never recomputed"
        )
    if mode == "recompute":
        assert counters.matview_auto_refreshes >= CYCLES
    if mode != "no_view":
        assert rows == conn.run(DASH_SQL).rows, (
            f"{mode}: matview diverged from the unfolded dashboard query"
        )
    conn.close()
    return {
        "write_s": write_s,
        "read_s": read_s,
        "total_s": write_s + read_s,
        "per_read_ms": read_s * 1000 / reads,
        "rows": rows,
    }


def test_incremental_maintenance_beats_recompute():
    """The acceptance experiment: over the same committed-update stream,
    dashboard reads through an incrementally maintained matview must be
    >= 5x faster than through one recomputed after every commit, without
    losing the saving to maintenance cost on the write side."""
    results = {mode: _run_stream(mode) for mode in ("no_view", "recompute", "incremental")}

    baseline = results["no_view"]["rows"]
    for mode, entry in results.items():
        assert entry["rows"] == baseline, f"{mode} disagrees on the final dashboard"

    speedup = results["recompute"]["read_s"] / results["incremental"]["read_s"]
    total_speedup = results["recompute"]["total_s"] / results["incremental"]["total_s"]
    read_speedup = results["no_view"]["read_s"] / results["incremental"]["read_s"]
    print_table(
        f"Dashboard over {BASE_ROWS:,} rows, {CYCLES} update batches, "
        f"{READS_PER_CYCLE} reads per batch",
        ["strategy", "writes", "reads", "per read", "total"],
        [
            (
                mode,
                f"{entry['write_s'] * 1000:.1f} ms",
                f"{entry['read_s'] * 1000:.1f} ms",
                f"{entry['per_read_ms']:.2f} ms",
                f"{entry['total_s'] * 1000:.1f} ms",
            )
            for mode, entry in results.items()
        ],
    )
    assert speedup >= 5.0, (
        f"incremental dashboard reads only {speedup:.1f}x faster than forced "
        "recomputation (>= 5x required)"
    )
    assert total_speedup >= 1.0, (
        f"maintenance cost ate the read saving: whole stream "
        f"{total_speedup:.2f}x vs recompute"
    )

    concurrent = _concurrent_stream()
    artifact = {
        "base_rows": BASE_ROWS,
        "cycles": CYCLES,
        "reads_per_cycle": READS_PER_CYCLE,
        "dashboard_sql": DASH_SQL,
        "modes": {
            mode: {k: v for k, v in entry.items() if k != "rows"}
            for mode, entry in results.items()
        },
        "speedups": {
            "incremental_reads_vs_recompute": speedup,
            "incremental_total_vs_recompute": total_speedup,
            "incremental_read_vs_no_view": read_speedup,
        },
        "concurrent": concurrent,
    }
    with open(_artifact_path(), "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {_artifact_path()}")


def _concurrent_stream() -> dict:
    """A writer session commits a stream on one thread while a reader
    session times dashboard reads through the matview on another; both
    share one database, so every read races live maintenance."""
    db = Database()
    setup = db.connect()
    setup.run("CREATE TABLE events (id int, grp int, val int)")
    setup.run("CREATE TABLE dims (grp int, label text)")
    rng = random.Random(13)
    setup.load_rows(
        "events",
        [(i, rng.randrange(GROUPS), rng.randrange(1000)) for i in range(1, 5001)],
    )
    setup.load_rows("dims", [(g, f"g{g}") for g in range(GROUPS)])
    setup.run(CREATE_MV)

    writer_commits = 0

    def write_stream() -> None:
        nonlocal writer_commits
        conn = db.connect()
        wrng = random.Random(29)
        for i in range(150):
            conn.run(
                f"INSERT INTO events VALUES "
                f"({5001 + i}, {wrng.randrange(GROUPS)}, {wrng.randrange(1000)})"
            )
            writer_commits += 1
        conn.close()

    reader = db.connect()
    reader.run("SELECT * FROM dash")
    writer = threading.Thread(target=write_stream)
    writer.start()
    latencies = []
    while writer.is_alive():
        start = time.perf_counter()
        reader.run("SELECT * FROM dash")
        latencies.append(time.perf_counter() - start)
    writer.join()

    # Convergence: once the stream drains, the matview is bit-identical
    # to the unfolded dashboard query.
    assert reader.run("SELECT * FROM dash").rows == reader.run(DASH_SQL).rows
    ordered = sorted(latencies)
    stats = {
        "writer_commits": writer_commits,
        "reads": len(latencies),
        "p50_ms": ordered[len(ordered) // 2] * 1000,
        "p95_ms": ordered[int(len(ordered) * 0.95)] * 1000,
    }
    print_table(
        "Concurrent stream (150 commits vs live dashboard reads)",
        ["reads", "p50", "p95"],
        [(stats["reads"], f"{stats['p50_ms']:.2f} ms", f"{stats['p95_ms']:.2f} ms")],
    )
    db.close()
    return stats
