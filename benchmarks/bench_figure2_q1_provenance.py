"""Figure 2 — the provenance of q1, byte for byte.

The central artifact of the paper: the provenance relation of
``SELECT PROVENANCE mId, text FROM messages UNION SELECT mId, text FROM
imports`` with the original result attributes followed by the
``prov_messages_*`` and ``prov_imports_*`` columns, contributing branch
populated, other branch NULL-padded.
"""

from __future__ import annotations

from conftest import print_table

PROV_Q1 = (
    "SELECT PROVENANCE mId, text FROM messages "
    "UNION SELECT mId, text FROM imports"
)

FIGURE2 = [
    (1, "lorem ipsum ...", 1, "lorem ipsum ...", 3, None, None, None),
    (2, "hello ...", None, None, None, 2, "hello ...", "superForum"),
    (3, "I don't ...", None, None, None, 3, "I don't ...", "HiBoard"),
    (4, "hi there ...", 4, "hi there ...", 2, None, None, None),
]


def test_figure2_exact_reproduction(benchmark, forum_db):
    result = benchmark(forum_db.run, PROV_Q1)
    assert result.columns == [
        "mId",
        "text",
        "prov_messages_mid",
        "prov_messages_text",
        "prov_messages_uid",
        "prov_imports_mid",
        "prov_imports_text",
        "prov_imports_origin",
    ]
    assert sorted(result.rows, key=repr) == sorted(FIGURE2, key=repr)
    print_table("Figure 2: provenance of q1", result.columns, result.sorted().rows)


def test_figure2_under_joinback_strategy(benchmark, forum_db):
    forum_db.options.union_strategy = "joinback"
    try:
        result = benchmark(forum_db.run, PROV_Q1)
        assert sorted(result.rows, key=repr) == sorted(FIGURE2, key=repr)
    finally:
        forum_db.options.union_strategy = "pad"
