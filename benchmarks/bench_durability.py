"""Durability benchmark: commit latency per mode plus recovery time.

Two experiments:

1. **Commit latency by durability mode** — a single writer commits
   ``$BENCH_DURABILITY_COMMITS`` (default 200) small transactions against
   a persistent database in each durability mode, and reports p50/p99
   commit latency plus the in-memory baseline. The expected shape:
   ``off`` ≈ in-memory (the WAL append is buffered), ``os`` adds a flush,
   ``fsync`` pays the disk — the price of power-loss safety in one
   number.

2. **Recovery time vs WAL length** — the same workload re-opened at
   several WAL lengths (no checkpoint, so every commit replays), plus
   once more after a ``CHECKPOINT`` rotated the log. Recovery time must
   grow with the replay backlog and collapse after the checkpoint.

Results go to ``BENCH_durability.json`` (override with
$BENCH_DURABILITY_JSON) so CI can archive the durability trajectory
across PRs.

Reproduce with::

    PYTHONPATH=src python -m pytest benchmarks/bench_durability.py -s
"""

from __future__ import annotations

import json
import os
import statistics
import time

from conftest import print_table

from repro.engine.database import Database
from repro.storage.wal import DURABILITY_MODES

COMMITS = int(os.environ.get("BENCH_DURABILITY_COMMITS", "200"))
RECOVERY_POINTS = (50, 200, 800)


def _artifact_path() -> str:
    return os.environ.get("BENCH_DURABILITY_JSON", "BENCH_durability.json")


def _merge_artifact(update: dict) -> None:
    path = _artifact_path()
    payload = {}
    if os.path.exists(path):
        with open(path) as handle:
            payload = json.load(handle)
    payload.update(update)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"\nwrote {path}")


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _run_commits(db: Database, commits: int) -> list[float]:
    """Time *commits* single-row insert transactions; returns seconds."""
    conn = db.connect()
    conn.run("CREATE TABLE bench (id int, val int)")
    latencies: list[float] = []
    for i in range(commits):
        started = time.perf_counter()
        conn.run("BEGIN")
        conn.run(f"INSERT INTO bench VALUES ({i}, {i * 7 % 100})")
        conn.run("COMMIT")
        latencies.append(time.perf_counter() - started)
    return latencies


# ---------------------------------------------------------------------------
# Experiment 1: commit latency by durability mode
# ---------------------------------------------------------------------------


def test_commit_latency_by_durability_mode(tmp_path):
    results: dict[str, dict] = {}

    db = Database()
    try:
        baseline = _run_commits(db, COMMITS)
    finally:
        db.close()
    results["memory"] = {
        "p50_ms": round(_percentile(baseline, 0.5) * 1000, 4),
        "p99_ms": round(_percentile(baseline, 0.99) * 1000, 4),
        "mean_ms": round(statistics.mean(baseline) * 1000, 4),
    }

    for mode in DURABILITY_MODES:
        with Database(path=str(tmp_path / f"db-{mode}"), durability=mode) as db:
            latencies = _run_commits(db, COMMITS)
            stats = db.wal_stats()
        results[mode] = {
            "p50_ms": round(_percentile(latencies, 0.5) * 1000, 4),
            "p99_ms": round(_percentile(latencies, 0.99) * 1000, 4),
            "mean_ms": round(statistics.mean(latencies) * 1000, 4),
            "wal_bytes": stats["wal_bytes"],
            "fsyncs": stats["fsyncs"],
        }

    # Sanity, not speed: fsync must actually fsync (once per commit plus
    # the DDL record), and "off" must never fsync on the commit path.
    assert results["fsync"]["fsyncs"] >= COMMITS
    assert results["off"]["fsyncs"] == 0

    print_table(
        f"commit latency, {COMMITS} single-row transactions",
        ["mode", "p50_ms", "p99_ms", "mean_ms"],
        [
            (mode, stats["p50_ms"], stats["p99_ms"], stats["mean_ms"])
            for mode, stats in results.items()
        ],
    )
    _merge_artifact({"commit_latency": {"commits": COMMITS, "modes": results}})


# ---------------------------------------------------------------------------
# Experiment 2: recovery time vs WAL length
# ---------------------------------------------------------------------------


def test_recovery_time_vs_wal_length(tmp_path):
    trajectory = []
    d = str(tmp_path / "db")
    total = 0
    for target in RECOVERY_POINTS:
        with Database(path=d, durability="off") as db:
            conn = db.connect()
            if total == 0:
                conn.run("CREATE TABLE bench (id int, val int)")
            for i in range(total, target):
                conn.run("BEGIN")
                conn.run(f"INSERT INTO bench VALUES ({i}, {i})")
                conn.run("COMMIT")
            total = target
            wal_bytes = db.wal_stats()["wal_bytes"]
        started = time.perf_counter()
        with Database(path=d, durability="off") as db:
            recovery = db.wal_stats()
            rows = db.connect().run("SELECT count(*) FROM bench").rows[0][0]
        wall_ms = round((time.perf_counter() - started) * 1000, 2)
        assert rows == target
        trajectory.append(
            {
                "commits": target,
                "wal_bytes": wal_bytes,
                "records_replayed": recovery["records_replayed"],
                "recovery_ms": recovery["recovery_ms"],
                "reopen_wall_ms": wall_ms,
            }
        )

    # After a checkpoint the snapshot carries everything: nothing replays.
    with Database(path=d, durability="off") as db:
        db.connect().run("CHECKPOINT")
    started = time.perf_counter()
    with Database(path=d, durability="off") as db:
        recovery = db.wal_stats()
        rows = db.connect().run("SELECT count(*) FROM bench").rows[0][0]
    assert rows == total
    assert recovery["records_replayed"] == 0
    trajectory.append(
        {
            "commits": total,
            "wal_bytes": 0,
            "records_replayed": 0,
            "recovery_ms": recovery["recovery_ms"],
            "reopen_wall_ms": round((time.perf_counter() - started) * 1000, 2),
            "checkpointed": True,
        }
    )

    print_table(
        "recovery time vs WAL length",
        ["commits", "wal_bytes", "replayed", "recovery_ms"],
        [
            (
                point["commits"],
                point["wal_bytes"],
                point["records_replayed"],
                point["recovery_ms"],
            )
            for point in trajectory
        ],
    )
    _merge_artifact({"recovery": trajectory})
