"""Three-engine backend sweep: row vs vectorized vs sqlite pushdown.

The headline experiment for the pushdown backend: the 100k-row
scan/filter/aggregate query must run at least 2x faster when the
rewritten plan is compiled to one SQL statement and executed by SQLite's
C engine (measured: ~40x — the whole query runs without touching the
Python interpreter per row, only the one-time mirror sync is Python).

The sweep then compares all three engines at 10k and 100k rows with
provenance rewriting on and off, asserting bit-identical results
throughout (the same property the differential harness checks, here at
benchmark scale).

Reproduce with::

    PYTHONPATH=src python -m pytest benchmarks/bench_backends.py -s
"""

from __future__ import annotations

import random
import time

from conftest import print_table

import repro
from repro.backend.sqlite import SQLiteQueryOp
from repro.workloads.queries import with_provenance

ENGINES = ("row", "vectorized", "sqlite")
SCALES = (10_000, 100_000)

SCAN_FILTER_AGG = (
    "SELECT count(*), sum(x), min(x), max(x) "
    "FROM readings WHERE x > 250.0 AND k % 2 = 0"
)

SWEEP_QUERIES = {
    "scan_filter_agg": SCAN_FILTER_AGG,
    "filter_project": "SELECT k, tag FROM readings WHERE grp < 10 AND x <= 500.0",
    "group_agg": "SELECT grp, count(*) AS n, min(k) AS lo, max(k) AS hi "
    "FROM readings GROUP BY grp",
}


def _readings_db(engine: str, rows: int) -> "repro.Connection":
    conn = repro.connect(engine=engine)
    conn.run("CREATE TABLE readings (k int, grp int, x float, tag text)")
    rng = random.Random(7)
    conn.load_rows(
        "readings",
        [
            (i, rng.randrange(50), rng.random() * 1000, rng.choice("abcde"))
            for i in range(rows)
        ],
    )
    return conn


def _time_query(conn, sql: str, repeat: int = 5) -> tuple[float, list]:
    """Best-of-*repeat* wall time (seconds) with a warm plan cache (and,
    for the sqlite backend, a warm table mirror)."""
    result = conn.run(sql)  # warm-up: plan cached, mirror synced
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        result = conn.run(sql)
        best = min(best, time.perf_counter() - start)
    return best, result.rows


def test_sqlite_pushdown_speedup():
    """The acceptance experiment: >= 2x vs the row engine on the
    100k-row scan/filter/aggregate query, with a pushed-down plan (not a
    fallback)."""
    times, rows = {}, {}
    for engine in ENGINES:
        conn = _readings_db(engine, 100_000)
        times[engine], rows[engine] = _time_query(conn, SCAN_FILTER_AGG)
        if engine == "sqlite":
            prepared = conn._prepared_for(conn.pipeline.parse(SCAN_FILTER_AGG)[0])
            assert isinstance(prepared.physical, SQLiteQueryOp), (
                "the benchmark query must push down to SQLite, not fall back"
            )
    print_table(
        "Scan/filter/aggregate over 100,000 rows",
        ["engine", "best of 5", "speedup"],
        [
            (engine, f"{times[engine] * 1000:.1f} ms", f"{times['row'] / times[engine]:.2f}x")
            for engine in ENGINES
        ],
    )
    assert rows["row"] == rows["vectorized"] == rows["sqlite"], (
        "engines disagree on results"
    )
    speedup = times["row"] / times["sqlite"]
    assert speedup >= 2.0, (
        f"sqlite backend only {speedup:.2f}x faster on the 100k-row "
        "scan/filter/aggregate query (>= 2x required)"
    )


def test_backend_sweep():
    """All three engines at 10k/100k rows, provenance on and off."""
    table_rows = []
    for scale in SCALES:
        databases = {engine: _readings_db(engine, scale) for engine in ENGINES}
        for name, sql in SWEEP_QUERIES.items():
            for provenance in (False, True):
                query = with_provenance(sql) if provenance else sql
                timings, results = {}, {}
                for engine in ENGINES:
                    timings[engine], results[engine] = _time_query(
                        databases[engine], query, repeat=3
                    )
                assert results["row"] == results["vectorized"] == results["sqlite"], (
                    f"engines disagree on {name} at {scale} rows "
                    f"(provenance={provenance})"
                )
                table_rows.append(
                    (
                        f"{scale // 1000}k",
                        name,
                        "on" if provenance else "off",
                        f"{timings['row'] * 1000:.2f}",
                        f"{timings['vectorized'] * 1000:.2f}",
                        f"{timings['sqlite'] * 1000:.2f}",
                        f"{timings['row'] / timings['sqlite']:.1f}x",
                    )
                )
    print_table(
        "Backend sweep (row vs vectorized vs sqlite)",
        ["rows", "query", "prov", "row ms", "vec ms", "sqlite ms", "sqlite speedup"],
        table_rows,
    )
