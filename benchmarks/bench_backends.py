"""Backend sweep: row vs vectorized vs sqlite vs partitioned sqlite.

Two headline experiments for the pushdown backends:

1. The 100k-row scan/filter/aggregate query must run at least 2x faster
   when the rewritten plan is compiled to one SQL statement and executed
   by SQLite's C engine (measured: ~40x — the whole query runs without
   touching the Python interpreter per row, only the one-time mirror
   sync is Python).
2. The hash-partitioned backend (``engine="sqlite-partition"``) must
   beat the single-connection sqlite backend on 1M-row aggregate-heavy
   queries by fanning the same compiled statement out across
   ``$REPRO_PARTITIONS`` shard connections on a thread pool (sqlite3
   releases the GIL, so the shards genuinely scan in parallel).

The sweep then compares every registered differential engine at 10k and
100k rows with provenance rewriting on and off, asserting bit-identical
results throughout (the same property the differential harness checks,
here at benchmark scale). Results land in ``BENCH_backends.json``
(override with $BENCH_BACKENDS_JSON) so CI can archive the trajectory.

Reproduce with::

    PYTHONPATH=src python -m pytest benchmarks/bench_backends.py -s
"""

from __future__ import annotations

import json
import os
import random
import time

from conftest import print_table

import repro
from repro.backend.partition import PartitionedQueryOp
from repro.backend.sqlite import SQLiteQueryOp
from repro.workloads.queries import with_provenance

ENGINES = ("row", "vectorized", "sqlite", "sqlite-partition")
SCALES = (10_000, 100_000)
PARTITION_ROWS = int(os.environ.get("BENCH_PARTITION_ROWS", "1000000"))

SCAN_FILTER_AGG = (
    "SELECT count(*), sum(x), min(x), max(x) "
    "FROM readings WHERE x > 250.0 AND k % 2 = 0"
)

SWEEP_QUERIES = {
    "scan_filter_agg": SCAN_FILTER_AGG,
    "filter_project": "SELECT k, tag FROM readings WHERE grp < 10 AND x <= 500.0",
    "group_agg": "SELECT grp, count(*) AS n, min(k) AS lo, max(k) AS hi "
    "FROM readings GROUP BY grp",
}

# Aggregate-heavy queries for the 1M-row partitioned experiment. All
# aggregate arguments are statically INT so the partial-aggregate merge
# is exact and the plans partition instead of delegating (float sum is
# order-sensitive and intentionally stays on the single connection).
PARTITION_QUERIES = {
    "int_scan_agg": (
        "SELECT count(*), sum(k), min(k), max(k) "
        "FROM readings WHERE x > 250.0 AND k % 2 = 0"
    ),
    "int_group_agg": (
        "SELECT grp, count(*) AS n, sum(k) AS total, min(k) AS lo, max(k) AS hi "
        "FROM readings GROUP BY grp"
    ),
}


def _artifact_path() -> str:
    return os.environ.get("BENCH_BACKENDS_JSON", "BENCH_backends.json")


def _readings_db(engine: str, rows: int) -> "repro.Connection":
    conn = repro.connect(engine=engine)
    conn.run("CREATE TABLE readings (k int, grp int, x float, tag text)")
    rng = random.Random(7)
    conn.load_rows(
        "readings",
        [
            (i, rng.randrange(50), rng.random() * 1000, rng.choice("abcde"))
            for i in range(rows)
        ],
    )
    return conn


def _time_query(conn, sql: str, repeat: int = 5) -> tuple[float, list]:
    """Best-of-*repeat* wall time (seconds) with a warm plan cache (and,
    for the pushdown backends, a warm table mirror)."""
    result = conn.run(sql)  # warm-up: plan cached, mirror synced
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        result = conn.run(sql)
        best = min(best, time.perf_counter() - start)
    return best, result.rows


def _physical_plan(conn, sql: str):
    return conn._prepared_for(conn.pipeline.parse(sql)[0]).physical


def test_sqlite_pushdown_speedup():
    """The acceptance experiment: >= 2x vs the row engine on the
    100k-row scan/filter/aggregate query, with a pushed-down plan (not a
    fallback)."""
    times, rows = {}, {}
    for engine in ENGINES:
        conn = _readings_db(engine, 100_000)
        times[engine], rows[engine] = _time_query(conn, SCAN_FILTER_AGG)
        if engine == "sqlite":
            assert isinstance(_physical_plan(conn, SCAN_FILTER_AGG), SQLiteQueryOp), (
                "the benchmark query must push down to SQLite, not fall back"
            )
    print_table(
        "Scan/filter/aggregate over 100,000 rows",
        ["engine", "best of 5", "speedup"],
        [
            (engine, f"{times[engine] * 1000:.1f} ms", f"{times['row'] / times[engine]:.2f}x")
            for engine in ENGINES
        ],
    )
    baseline = rows["row"]
    for engine in ENGINES:
        assert rows[engine] == baseline, f"{engine} disagrees on results"
    speedup = times["row"] / times["sqlite"]
    assert speedup >= 2.0, (
        f"sqlite backend only {speedup:.2f}x faster on the 100k-row "
        "scan/filter/aggregate query (>= 2x required)"
    )


def test_partitioned_sqlite_beats_single_connection():
    """The registry-proof experiment: on 1M-row aggregate-heavy queries
    the hash-partitioned backend must beat single-connection sqlite,
    with genuinely partitioned plans (no delegation, no rescues)."""
    sqlite_db = _readings_db("sqlite", PARTITION_ROWS)
    partition_db = _readings_db("sqlite-partition", PARTITION_ROWS)
    backend = partition_db.pipeline.planner.backend
    shard_count = backend.shard_count

    table_rows, artifact_queries = [], {}
    for name, sql in PARTITION_QUERIES.items():
        assert isinstance(_physical_plan(partition_db, sql), PartitionedQueryOp), (
            f"{name} must compile to a partitioned plan, not delegate"
        )
        sqlite_s, sqlite_rows = _time_query(sqlite_db, sql)
        partition_s, partition_rows = _time_query(partition_db, sql)
        assert partition_rows == sqlite_rows, f"backends disagree on {name}"
        speedup = sqlite_s / partition_s
        table_rows.append(
            (
                name,
                f"{sqlite_s * 1000:.1f} ms",
                f"{partition_s * 1000:.1f} ms",
                f"{speedup:.2f}x",
            )
        )
        artifact_queries[name] = {
            "sql": sql,
            "sqlite_s": sqlite_s,
            "sqlite_partition_s": partition_s,
            "speedup": speedup,
        }
    assert backend.rescues == 0, "partitioned plans should not have rescued"

    print_table(
        f"Aggregate-heavy queries over {PARTITION_ROWS:,} rows "
        f"({shard_count} shards)",
        ["query", "sqlite", "sqlite-partition", "speedup"],
        table_rows,
    )

    best = max(entry["speedup"] for entry in artifact_queries.values())
    assert best > 1.0, (
        f"sqlite-partition never beat single-connection sqlite at "
        f"{PARTITION_ROWS:,} rows (best {best:.2f}x)"
    )

    artifact = {
        "rows": PARTITION_ROWS,
        "shards": shard_count,
        "queries": artifact_queries,
    }
    with open(_artifact_path(), "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {_artifact_path()}")


def test_backend_sweep():
    """Every differential engine at 10k/100k rows, provenance on and
    off."""
    table_rows = []
    for scale in SCALES:
        databases = {engine: _readings_db(engine, scale) for engine in ENGINES}
        for name, sql in SWEEP_QUERIES.items():
            for provenance in (False, True):
                query = with_provenance(sql) if provenance else sql
                timings, results = {}, {}
                for engine in ENGINES:
                    timings[engine], results[engine] = _time_query(
                        databases[engine], query, repeat=3
                    )
                baseline = results["row"]
                for engine in ENGINES:
                    assert results[engine] == baseline, (
                        f"{engine} disagrees on {name} at {scale} rows "
                        f"(provenance={provenance})"
                    )
                table_rows.append(
                    (
                        f"{scale // 1000}k",
                        name,
                        "on" if provenance else "off",
                        f"{timings['row'] * 1000:.2f}",
                        f"{timings['vectorized'] * 1000:.2f}",
                        f"{timings['sqlite'] * 1000:.2f}",
                        f"{timings['sqlite-partition'] * 1000:.2f}",
                        f"{timings['row'] / timings['sqlite']:.1f}x",
                    )
                )
    print_table(
        "Backend sweep (row vs vectorized vs sqlite vs sqlite-partition)",
        ["rows", "query", "prov", "row ms", "vec ms", "sqlite ms", "part ms", "sqlite speedup"],
        table_rows,
    )
