"""Figure 4 — the Perm browser panes.

Regenerates the browser's five panes (input SQL, rewritten SQL, original
algebra tree, rewritten algebra tree, result grid) for the demo queries
and times pane construction. The demo's "Rewrite analysis" part is this
bench's printed output.
"""

from __future__ import annotations

from repro.browser import PermBrowser
from repro.workloads.forum import SQLPLE_AGGREGATION

SIMPLE = "SELECT PROVENANCE mId, text FROM messages UNION SELECT mId, text FROM imports"


def test_browser_panes_for_union_query(benchmark, forum_db):
    browser = PermBrowser(forum_db)
    view = benchmark(browser.run, SIMPLE)
    assert "prov_messages_mid" in view.rewritten_sql
    assert "∪" in view.original_tree
    print("\n" + view.render(max_rows=6))


def test_browser_panes_for_aggregation_query(benchmark, forum_db):
    browser = PermBrowser(forum_db)
    view = benchmark(browser.run, SQLPLE_AGGREGATION)
    assert "α[" in view.original_tree
    assert "⟕" in view.rewritten_tree


def test_rewritten_sql_pane_is_executable(benchmark, forum_db):
    """Pane 2 shows real SQL: executing it must reproduce the result."""
    browser = PermBrowser(forum_db)
    view = browser.run(SIMPLE)
    rerun = benchmark(forum_db.run, view.rewritten_sql)
    assert sorted(rerun.rows, key=repr) == sorted(view.result.rows, key=repr)
