"""Figure 3 — the Perm architecture pipeline.

The paper's architecture figure shows the stages a query passes through:
Parser & Analyzer -> Provenance Rewriter -> Planner -> Executor. This
bench times each stage separately for a representative provenance query,
demonstrating the architectural claim that the rewrite itself is cheap —
the provenance cost is in executing the (relational, optimizable)
rewritten query, which is exactly why representing provenance
computation as ordinary queries pays off.
"""

from __future__ import annotations

from conftest import print_table

from repro.workloads.forum import SQLPLE_AGGREGATION

STAGES = ["parse", "analyze", "provenance rewrite", "optimize", "plan", "execute"]


def test_pipeline_stage_breakdown(benchmark, forum_db_large):
    profiles = []

    def run():
        profile = forum_db_large.profile(SQLPLE_AGGREGATION)
        profiles.append(profile)
        return profile

    benchmark(run)
    profile = profiles[-1]
    rows = [
        (stage, f"{profile.timing(stage) * 1000:.3f} ms")
        for stage in STAGES
    ]
    rows.append(("total", f"{profile.total_seconds * 1000:.3f} ms"))
    print_table("Figure 3: pipeline stage timings", ["stage", "time"], rows)
    # The rewrite is plan-time work: it must cost less than execution.
    assert profile.timing("provenance rewrite") < profile.timing("execute")


def test_rewrite_stage_alone(benchmark, forum_db_large):
    """Isolate the Provenance Rewriter box: analyze once, rewrite many."""
    from repro.analyzer import Analyzer
    from repro.sql import parse_statement

    statement = parse_statement(SQLPLE_AGGREGATION)
    analyzer = Analyzer(forum_db_large.catalog)
    node = analyzer.analyze_query(statement.query)
    expanded = benchmark(forum_db_large.rewriter.expand, node)
    assert expanded.provenance_names


def test_analyzer_stage_alone(benchmark, forum_db_large):
    from repro.analyzer import Analyzer
    from repro.sql import parse_statement

    statement = parse_statement(SQLPLE_AGGREGATION)

    def analyze():
        return Analyzer(forum_db_large.catalog).analyze_query(statement.query)

    node = benchmark(analyze)
    assert node.schema.names
