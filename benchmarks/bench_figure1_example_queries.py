"""Figure 1 — the example database and queries q1/q2/q3.

Regenerates the results of the paper's example queries on the exact
Figure 1 instance and times their execution through the full pipeline.
"""

from __future__ import annotations

from conftest import print_table

from repro.workloads.forum import Q1, Q3


def test_q1_union_of_messages_and_imports(benchmark, forum_db):
    result = benchmark(forum_db.run, Q1)
    assert sorted(result.rows, key=repr) == [
        (1, "lorem ipsum ..."),
        (2, "hello ..."),
        (3, "I don't ..."),
        (4, "hi there ..."),
    ]
    print_table("Figure 1: q1 result", result.columns, sorted(result.rows))


def test_q2_view_is_queryable(benchmark, forum_db):
    result = benchmark(forum_db.run, "SELECT mId, text FROM v1")
    assert len(result) == 4


def test_q3_approval_counts(benchmark, forum_db):
    result = benchmark(forum_db.run, Q3)
    assert sorted(result.rows) == [(1, "hello ..."), (3, "hi there ...")]
    print_table("Figure 1: q3 result", result.columns, sorted(result.rows))
