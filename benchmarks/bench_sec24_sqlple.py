"""§2.4 — the SQL-PLE listings, timed end to end.

Listing 1: aggregation provenance with explicit ON CONTRIBUTION.
Listing 2: querying provenance with plain SQL on top.
Listing 3: BASERELATION stopping the rewrite at a view.
"""

from __future__ import annotations

from conftest import print_table

from repro.workloads.forum import (
    SQLPLE_AGGREGATION,
    SQLPLE_BASERELATION,
    SQLPLE_QUERYING_PROVENANCE,
)


def test_listing1_aggregation_provenance(benchmark, forum_db):
    result = benchmark(forum_db.run, SQLPLE_AGGREGATION)
    assert len(result) == 4
    print_table("§2.4 listing 1", result.columns, result.sorted().rows)


def test_listing2_querying_provenance(benchmark, forum_db):
    result = benchmark(forum_db.run, SQLPLE_QUERYING_PROVENANCE)
    assert result.rows == [("hello ...", "superForum")]
    print_table("§2.4 listing 2", result.columns, result.rows)


def test_listing3_baserelation(benchmark, forum_db):
    result = benchmark(forum_db.run, SQLPLE_BASERELATION)
    assert result.columns == ["text", "prov_v1_mid", "prov_v1_text"]
    assert len(result) == 4
    print_table("§2.4 listing 3", result.columns, result.sorted().rows)


def test_baserelation_vs_full_unfold(benchmark, forum_db_large):
    """BASERELATION is also a performance lever: stopping the rewrite at
    the view skips rewriting the union below it."""
    result = benchmark(
        forum_db_large.run, "SELECT PROVENANCE text FROM v1 BASERELATION"
    )
    full = forum_db_large.run("SELECT PROVENANCE text FROM v1")
    # Full unfolding carries base-relation witnesses (6 prov columns);
    # BASERELATION carries the view tuple (2 prov columns).
    assert len(result.provenance_attrs) == 2
    assert len(full.provenance_attrs) == 6
