"""Shared benchmark fixtures and reporting helpers.

Every benchmark regenerates one artifact of the paper (see DESIGN.md's
per-experiment index). Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to also see the regenerated tables/figures printed inline.
"""

from __future__ import annotations

import pytest

from repro import Connection
from repro.workloads.forum import create_forum_db, scaled_forum_db
from repro.workloads.tpch import TpchConfig, create_tpch_db


@pytest.fixture(scope="session")
def forum_db() -> Connection:
    """The paper's Figure 1 database."""
    return create_forum_db()


@pytest.fixture(scope="session")
def forum_db_large() -> Connection:
    """A scaled forum instance for timing-sensitive comparisons."""
    return scaled_forum_db(messages=400, users=60, imports=200, approvals_per_message=3)


@pytest.fixture(scope="session")
def tpch_db() -> Connection:
    """TPC-H-like database at the default benchmark scale."""
    return create_tpch_db(TpchConfig())


@pytest.fixture(scope="session")
def tpch_db_small() -> Connection:
    return create_tpch_db(TpchConfig().scale(0.25))


def print_table(title: str, headers: list[str], rows: list[tuple]) -> None:
    """Aligned table output for regenerated results (visible with -s)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    print(f"\n== {title} ==")
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in cells:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))
