"""Scaling behaviour of provenance computation.

Sweeps the TPC-H-like database across scale factors and measures how the
provenance overhead factor evolves per query class. The reproduced
shape: the overhead factor stays roughly flat with data size for SPJ and
aggregation (the rewrite adds joins whose cost grows with the same
asymptotics as the original query) — i.e. provenance computation *scales
with the query*, the core feasibility claim behind running Perm on a
real DBMS.
"""

from __future__ import annotations

import json
import os
import time

import pytest
from conftest import print_table

from repro.engine.database import Database
from repro.workloads.queries import with_provenance
from repro.workloads.tpch import TpchConfig, create_tpch_db

SCALES = [0.25, 0.5, 1.0]

SWEEP_QUERIES = {
    "SPJ": "SELECT c_name, o_orderkey FROM customer JOIN orders ON c_custkey = o_custkey "
           "WHERE o_totalprice > 200000",
    "AGG": "SELECT o_custkey, count(*) AS n FROM orders GROUP BY o_custkey",
    "SET": "SELECT c_custkey FROM customer WHERE c_acctbal > 5000 "
           "UNION SELECT o_custkey FROM orders WHERE o_totalprice > 300000",
}


@pytest.mark.parametrize("scale", SCALES, ids=[f"scale={s}" for s in SCALES])
def test_spj_provenance_scaling(benchmark, scale):
    db = create_tpch_db(TpchConfig().scale(scale))
    sql = with_provenance(SWEEP_QUERIES["SPJ"])
    result = benchmark(db.run, sql)
    assert len(result) > 0


def test_overhead_factor_stays_bounded():
    """The provenance/original factor must not blow up with data size."""
    rows = []
    factors: dict[str, list[float]] = {name: [] for name in SWEEP_QUERIES}
    for scale in SCALES:
        db = create_tpch_db(TpchConfig().scale(scale))
        for name, sql in SWEEP_QUERIES.items():
            start = time.perf_counter()
            for _ in range(3):
                db.run(sql)
            plain = (time.perf_counter() - start) / 3
            start = time.perf_counter()
            for _ in range(3):
                db.run(with_provenance(sql))
            prov = (time.perf_counter() - start) / 3
            factor = prov / plain if plain > 0 else float("inf")
            factors[name].append(factor)
            rows.append((f"{scale:.2f}", name, f"{plain * 1000:.2f}", f"{prov * 1000:.2f}", f"{factor:.2f}x"))
    print_table(
        "Provenance overhead vs scale",
        ["scale", "class", "original ms", "provenance ms", "factor"],
        rows,
    )
    for name, series in factors.items():
        # Flat-ish: the largest scale's factor stays within a small
        # multiple of the smallest scale's (generous bound for noise).
        assert series[-1] < max(series[0] * 4, 12.0), (name, series)


def test_engine_speedup_vs_scale():
    """Row vs vectorized across data scales, provenance on and off.

    The vectorized engine's advantage should hold (or grow) with data
    size: batch execution amortizes per-tuple overhead, so more tuples
    mean more amortization — never a regression back under the row
    engine on these scan-heavy shapes.
    """
    rows = []
    for scale in SCALES:
        databases = {
            engine: create_tpch_db(TpchConfig().scale(scale), engine=engine)
            for engine in ("row", "vectorized")
        }
        for name, sql in SWEEP_QUERIES.items():
            for provenance in (False, True):
                query = with_provenance(sql) if provenance else sql
                timings = {}
                for engine, db in databases.items():
                    db.run(query)  # warm the plan cache
                    start = time.perf_counter()
                    for _ in range(3):
                        db.run(query)
                    timings[engine] = (time.perf_counter() - start) / 3
                rows.append(
                    (
                        f"{scale:.2f}",
                        name,
                        "on" if provenance else "off",
                        f"{timings['row'] * 1000:.2f}",
                        f"{timings['vectorized'] * 1000:.2f}",
                        f"{timings['row'] / timings['vectorized']:.2f}x",
                    )
                )
    print_table(
        "Row vs vectorized engine vs scale",
        ["scale", "class", "prov", "row ms", "vectorized ms", "speedup"],
        rows,
    )


# ---------------------------------------------------------------------------
# Durable-database sweep: all three engines against Database(path=...)
# ---------------------------------------------------------------------------

# Local/test runs stay small; CI sets BENCH_SCALING_ROWS=10000000 for
# the full 10M-row sweep. The row engine is tuple-at-a-time Python and
# is capped (default 1M rows) so the sweep finishes; vectorized and
# sqlite run every point.
SCALING_ROWS = int(os.environ.get("BENCH_SCALING_ROWS", "200000"))
ROW_ENGINE_CAP = int(os.environ.get("BENCH_SCALING_ROW_CAP", "1000000"))
SCALING_DURABILITY = os.environ.get("BENCH_SCALING_DURABILITY", "os")
LOAD_CHUNK = 100_000

SCALING_QUERIES = {
    "scan_filter_agg": "SELECT count(*) AS n, sum(val) AS s FROM metrics WHERE grp < 100",
    "filter_project": "SELECT id, val FROM metrics WHERE grp = 7",
    "group_agg": "SELECT grp % 10 AS g, sum(id) AS s, avg(val) AS a "
                 "FROM metrics GROUP BY grp % 10",
}


def _scaling_artifact_path() -> str:
    return os.environ.get("BENCH_SCALING_JSON", "BENCH_scaling.json")


def _scaling_points(total: int) -> list[int]:
    return sorted({max(10_000, total // 100), max(10_000, total // 10), total})


def _load_metrics_rows(conn, start: int, stop: int) -> float:
    """Append rows [start, stop) to metrics in bounded-memory chunks;
    returns wall seconds. Every executemany batch is one durable
    commit, so the sweep exercises the WAL at bulk-load granularity."""
    began = time.perf_counter()
    for lo in range(start, stop, LOAD_CHUNK):
        hi = min(lo + LOAD_CHUNK, stop)
        conn.load_rows(
            "metrics",
            [(i, i % 1000, (i * 7 % 10000) / 10.0) for i in range(lo, hi)],
        )
    return time.perf_counter() - began


def test_durable_scaling_sweep(tmp_path):
    """Query latency vs data size against a *durable* database.

    One on-disk Database(path=...) is grown through the sweep points;
    at each point every engine runs the workload queries with a warm
    plan cache. Results append to BENCH_scaling.json so CI can archive
    the scaling trajectory across PRs.
    """
    points = _scaling_points(SCALING_ROWS)
    measurements: list[dict] = []
    table_rows: list[tuple] = []
    with Database(
        path=str(tmp_path / "scaling"), durability=SCALING_DURABILITY
    ) as db:
        connections = {
            engine: db.connect(engine=engine)
            for engine in ("row", "vectorized", "sqlite")
        }
        loader = connections["row"]
        loader.run("CREATE TABLE metrics (id int, grp int, val float)")
        loaded = 0
        for point in points:
            load_seconds = _load_metrics_rows(loader, loaded, point)
            loaded = point
            iterations = 3 if point <= 1_000_000 else 1
            for name, sql in SCALING_QUERIES.items():
                for engine, conn in connections.items():
                    if engine == "row" and point > ROW_ENGINE_CAP:
                        continue
                    conn.run(sql)  # warm the plan cache / sqlite mirror
                    best = min(
                        _timed(conn, sql) for _ in range(iterations)
                    )
                    measurements.append(
                        {
                            "rows": point,
                            "engine": engine,
                            "query": name,
                            "ms": round(best * 1000, 3),
                            "load_s": round(load_seconds, 3),
                        }
                    )
                    table_rows.append(
                        (f"{point:,}", name, engine, f"{best * 1000:.2f}")
                    )
        wal = db.wal_stats()
    print_table(
        f"Durable scaling sweep ({SCALING_DURABILITY} durability)",
        ["rows", "query", "engine", "best ms"],
        table_rows,
    )
    payload = {}
    path = _scaling_artifact_path()
    if os.path.exists(path):
        with open(path) as handle:
            payload = json.load(handle)
    payload["durable_sweep"] = {
        "rows": SCALING_ROWS,
        "durability": SCALING_DURABILITY,
        "row_engine_cap": ROW_ENGINE_CAP,
        "wal_bytes": wal["wal_bytes"],
        "measurements": measurements,
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"\nwrote {path}")

    # Sanity: the sweep really ran against the durable store and every
    # engine agreed at the final point on the aggregate query.
    assert wal["wal_bytes"] > 0
    answers = {
        engine: tuple(conn.run(SCALING_QUERIES["scan_filter_agg"]).rows)
        for engine, conn in connections.items()
        if not (engine == "row" and loaded > ROW_ENGINE_CAP)
    }
    assert len(set(answers.values())) == 1, answers


def _timed(conn, sql: str) -> float:
    start = time.perf_counter()
    conn.run(sql)
    return time.perf_counter() - start
