"""Scaling behaviour of provenance computation.

Sweeps the TPC-H-like database across scale factors and measures how the
provenance overhead factor evolves per query class. The reproduced
shape: the overhead factor stays roughly flat with data size for SPJ and
aggregation (the rewrite adds joins whose cost grows with the same
asymptotics as the original query) — i.e. provenance computation *scales
with the query*, the core feasibility claim behind running Perm on a
real DBMS.
"""

from __future__ import annotations

import time

import pytest
from conftest import print_table

from repro.workloads.queries import with_provenance
from repro.workloads.tpch import TpchConfig, create_tpch_db

SCALES = [0.25, 0.5, 1.0]

SWEEP_QUERIES = {
    "SPJ": "SELECT c_name, o_orderkey FROM customer JOIN orders ON c_custkey = o_custkey "
           "WHERE o_totalprice > 200000",
    "AGG": "SELECT o_custkey, count(*) AS n FROM orders GROUP BY o_custkey",
    "SET": "SELECT c_custkey FROM customer WHERE c_acctbal > 5000 "
           "UNION SELECT o_custkey FROM orders WHERE o_totalprice > 300000",
}


@pytest.mark.parametrize("scale", SCALES, ids=[f"scale={s}" for s in SCALES])
def test_spj_provenance_scaling(benchmark, scale):
    db = create_tpch_db(TpchConfig().scale(scale))
    sql = with_provenance(SWEEP_QUERIES["SPJ"])
    result = benchmark(db.run, sql)
    assert len(result) > 0


def test_overhead_factor_stays_bounded():
    """The provenance/original factor must not blow up with data size."""
    rows = []
    factors: dict[str, list[float]] = {name: [] for name in SWEEP_QUERIES}
    for scale in SCALES:
        db = create_tpch_db(TpchConfig().scale(scale))
        for name, sql in SWEEP_QUERIES.items():
            start = time.perf_counter()
            for _ in range(3):
                db.run(sql)
            plain = (time.perf_counter() - start) / 3
            start = time.perf_counter()
            for _ in range(3):
                db.run(with_provenance(sql))
            prov = (time.perf_counter() - start) / 3
            factor = prov / plain if plain > 0 else float("inf")
            factors[name].append(factor)
            rows.append((f"{scale:.2f}", name, f"{plain * 1000:.2f}", f"{prov * 1000:.2f}", f"{factor:.2f}x"))
    print_table(
        "Provenance overhead vs scale",
        ["scale", "class", "original ms", "provenance ms", "factor"],
        rows,
    )
    for name, series in factors.items():
        # Flat-ish: the largest scale's factor stays within a small
        # multiple of the smallest scale's (generous bound for noise).
        assert series[-1] < max(series[0] * 4, 12.0), (name, series)


def test_engine_speedup_vs_scale():
    """Row vs vectorized across data scales, provenance on and off.

    The vectorized engine's advantage should hold (or grow) with data
    size: batch execution amortizes per-tuple overhead, so more tuples
    mean more amortization — never a regression back under the row
    engine on these scan-heavy shapes.
    """
    rows = []
    for scale in SCALES:
        databases = {
            engine: create_tpch_db(TpchConfig().scale(scale), engine=engine)
            for engine in ("row", "vectorized")
        }
        for name, sql in SWEEP_QUERIES.items():
            for provenance in (False, True):
                query = with_provenance(sql) if provenance else sql
                timings = {}
                for engine, db in databases.items():
                    db.run(query)  # warm the plan cache
                    start = time.perf_counter()
                    for _ in range(3):
                        db.run(query)
                    timings[engine] = (time.perf_counter() - start) / 3
                rows.append(
                    (
                        f"{scale:.2f}",
                        name,
                        "on" if provenance else "off",
                        f"{timings['row'] * 1000:.2f}",
                        f"{timings['vectorized'] * 1000:.2f}",
                        f"{timings['row'] / timings['vectorized']:.2f}x",
                    )
                )
    print_table(
        "Row vs vectorized engine vs scale",
        ["scale", "class", "prov", "row ms", "vectorized ms", "speedup"],
        rows,
    )
