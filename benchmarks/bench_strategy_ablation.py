"""Rewrite-strategy ablation (paper §2.2).

"For some operators there is more than one rewrite rule ... the choice
of rewrite rule influences the performance of the provenance
computation. We provide a heuristic and a cost-based solution for
choosing the best rewrite strategy."

Measured here:

* union: pad vs join-back vs cost-based choice, across data sizes;
* sublinks: GEN/LEFT unnesting vs KEEP (no sublink provenance) — the
  unnested provenance query can beat the original correlated execution;
* the cost-based chooser must track the better fixed strategy.
"""

from __future__ import annotations

import time

import pytest
from conftest import print_table

from repro import Connection, RewriteOptions, connect
from repro.workloads.forum import scaled_forum_db

UNION_PROV = "SELECT PROVENANCE mId, text FROM messages UNION SELECT mId, text FROM imports"


def _forum(strategy: str) -> Connection:
    return scaled_forum_db(
        messages=300,
        users=50,
        imports=150,
        db=connect(RewriteOptions(union_strategy=strategy)),
    )


@pytest.mark.parametrize("strategy", ["pad", "joinback", "cost"])
def test_union_strategy(benchmark, strategy):
    db = _forum(strategy)
    result = benchmark(db.run, UNION_PROV)
    assert len(result) == 450  # one witness row per base tuple


def test_union_cost_choice_tracks_best():
    timings = {}
    for strategy in ("pad", "joinback", "cost"):
        db = _forum(strategy)
        start = time.perf_counter()
        for _ in range(3):
            db.run(UNION_PROV)
        timings[strategy] = (time.perf_counter() - start) / 3
    rows = [(s, f"{t * 1000:.2f} ms") for s, t in timings.items()]
    print_table("Union strategy ablation", ["strategy", "mean time"], rows)
    best_fixed = min(timings["pad"], timings["joinback"])
    worst_fixed = max(timings["pad"], timings["joinback"])
    # The chooser must not be (much) worse than the worst fixed strategy
    # and should sit near the best one; generous slack for timer noise.
    assert timings["cost"] <= worst_fixed * 1.5
    assert timings["cost"] <= best_fixed * 2.5


SUBLINK_PROV = (
    "SELECT PROVENANCE name FROM users u WHERE EXISTS "
    "(SELECT 1 FROM approved a WHERE a.uId = u.uId)"
)


@pytest.mark.parametrize("strategy", ["heuristic", "keep"])
def test_sublink_strategy(benchmark, strategy):
    db = scaled_forum_db(
        messages=300, users=50, imports=100,
        db=connect(RewriteOptions(sublink_strategy=strategy)),
    )
    result = benchmark(db.run, SUBLINK_PROV)
    names = {row[0] for row in result.rows}
    baseline = db.run(SUBLINK_PROV.replace("PROVENANCE ", ""))
    assert names == {row[0] for row in baseline.rows}
    if strategy == "keep":
        # KEEP yields no witness columns from the sublink.
        assert result.columns == ["name", "prov_users_uid", "prov_users_name"]
    else:
        assert "prov_approved_uid" in result.columns


def test_sublink_unnesting_beats_correlated_original():
    """The decorrelated provenance query uses a hash join where the
    original query evaluates the EXISTS sublink per row — on sufficient
    data the provenance query is faster than its own original."""
    db = scaled_forum_db(messages=600, users=120, imports=100, approvals_per_message=4)

    start = time.perf_counter()
    db.run(SUBLINK_PROV.replace("PROVENANCE ", ""))
    original = time.perf_counter() - start

    start = time.perf_counter()
    db.run(SUBLINK_PROV)
    provenance = time.perf_counter() - start

    print_table(
        "Sublink unnesting (correlated EXISTS)",
        ["variant", "time"],
        [
            ("original (per-row sublink)", f"{original * 1000:.2f} ms"),
            ("provenance (decorrelated join)", f"{provenance * 1000:.2f} ms"),
        ],
    )
    assert provenance < original
