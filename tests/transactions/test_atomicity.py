"""Satellites: atomic DML at the storage layer, all-or-nothing
``executemany``, and plan/statistics revalidation across rollback."""

from __future__ import annotations

import pytest

from repro import Database, SerializationError, TypeCheckError, connect
from repro.catalog.schema import Attribute, Schema
from repro.datatypes import SQLType
from repro.errors import AnalyzeError, CatalogError, ExecutionError, OperationalError
from repro.storage.table import HeapTable


def _table() -> HeapTable:
    table = HeapTable(
        "t", Schema((Attribute("a", SQLType.INT), Attribute("b", SQLType.TEXT)))
    )
    table.insert_many([(1, "x"), (2, "y"), (3, "z")])
    return table


# ---------------------------------------------------------------------------
# HeapTable-level atomicity (stage-then-apply)
# ---------------------------------------------------------------------------


class TestHeapTableAtomicity:
    def test_insert_many_is_all_or_nothing(self):
        table = _table()
        before = table.rows
        version = table.version
        with pytest.raises(CatalogError, match="columns"):
            table.insert_many([(4, "ok"), (5, "ok", "extra")])
        assert table.rows is before, "a bad row mid-batch must leave the heap alone"
        assert table.version == version

    def test_update_where_predicate_error_leaves_heap(self):
        table = _table()
        before = list(table.rows)
        version = table.version

        def predicate(row):
            if row[0] == 3:
                raise ExecutionError("boom mid-scan")
            return True

        with pytest.raises(ExecutionError):
            table.update_where(predicate, lambda row: (row[0], "hit"))
        assert table.rows == before
        assert table.version == version

    def test_update_where_coercion_error_leaves_heap(self):
        table = _table()
        before = list(table.rows)

        def updater(row):
            # Coercion of the third row fails after two staged updates.
            return (None, None, None) if row[0] == 3 else (row[0] * 10, row[1])

        with pytest.raises(CatalogError):
            table.update_where(lambda row: True, updater)
        assert table.rows == before

    def test_delete_where_predicate_error_leaves_heap(self):
        table = _table()
        before = list(table.rows)

        def predicate(row):
            if row[0] == 2:
                raise ExecutionError("boom")
            return True

        with pytest.raises(ExecutionError):
            table.delete_where(predicate)
        assert table.rows == before

    def test_sql_update_division_by_zero_mid_table(self):
        conn = connect()
        conn.run("CREATE TABLE t (a int, b int)")
        conn.load_rows("t", [(1, 1), (2, 0), (3, 3)])
        with pytest.raises(ExecutionError, match="division by zero"):
            conn.execute("UPDATE t SET b = 10 / b")
        assert conn.execute("SELECT a, b FROM t").fetchall() == [(1, 1), (2, 0), (3, 3)]

    def test_sql_multi_row_insert_error_inserts_nothing(self):
        conn = connect()
        conn.run("CREATE TABLE t (a int)")
        with pytest.raises(ExecutionError, match="division by zero"):
            conn.execute("INSERT INTO t VALUES (1), (1 / 0), (3)")
        assert conn.execute("SELECT count(*) FROM t").fetchall() == [(0,)]


# ---------------------------------------------------------------------------
# executemany: all rows or none
# ---------------------------------------------------------------------------


class TestExecutemanyAtomicity:
    def test_mid_batch_bind_error_leaves_table_untouched(self):
        conn = connect()
        conn.run("CREATE TABLE t (a int, b text)")
        with pytest.raises((TypeCheckError, ExecutionError)):
            conn.executemany(
                "INSERT INTO t VALUES (?, ?)",
                [(1, "ok"), (2, "ok"), ("not-an-int", "bad"), (4, "never")],
            )
        assert conn.execute("SELECT count(*) FROM t").fetchall() == [(0,)]

    def test_mid_batch_arity_error_leaves_table_untouched(self):
        conn = connect()
        conn.run("CREATE TABLE t (a int, b text)")
        with pytest.raises(Exception):
            conn.executemany(
                "INSERT INTO t VALUES (?, ?)", [(1, "ok"), (2,), (3, "never")]
            )
        assert conn.execute("SELECT count(*) FROM t").fetchall() == [(0,)]

    def test_mid_batch_execution_error_leaves_table_untouched(self):
        conn = connect()
        conn.run("CREATE TABLE t (a int)")
        conn.load_rows("t", [(10,)])
        with pytest.raises(ExecutionError):
            conn.executemany("INSERT INTO t VALUES (100 / ?)", [(2,), (0,), (4,)])
        assert conn.execute("SELECT a FROM t").fetchall() == [(10,)]

    def test_mid_batch_error_inside_explicit_transaction(self):
        # Inside BEGIN the batch is savepoint-fenced: earlier statements
        # of the transaction survive, the batch vanishes entirely.
        conn = connect()
        conn.run("CREATE TABLE t (a int, b text)")
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t VALUES (0, 'pre')")
        with pytest.raises((TypeCheckError, ExecutionError)):
            conn.executemany(
                "INSERT INTO t VALUES (?, ?)", [(1, "ok"), ("bad", "x"), (3, "ok")]
            )
        assert conn.in_transaction
        conn.commit()
        assert conn.execute("SELECT a, b FROM t").fetchall() == [(0, "pre")]

    def test_successful_batch_commits_once(self):
        db = Database()
        conn = connect(database=db)
        conn.run("CREATE TABLE t (a int)")
        conn.executemany("INSERT INTO t VALUES (?)", [(i,) for i in range(5)])
        other = connect(database=db)
        assert other.execute("SELECT count(*) FROM t").fetchall() == [(5,)]

    def test_update_batch_atomicity(self):
        conn = connect()
        conn.run("CREATE TABLE t (a int, b int)")
        conn.load_rows("t", [(1, 1), (2, 2)])
        with pytest.raises(ExecutionError):
            conn.executemany(
                "UPDATE t SET b = 100 / ? WHERE a = 1", [(4,), (0,)]
            )
        assert conn.execute("SELECT a, b FROM t").fetchall() == [(1, 1), (2, 2)]


# ---------------------------------------------------------------------------
# Plan-cache / PreparedPlan revalidation across transactions
# ---------------------------------------------------------------------------


class TestPlanRevalidationAcrossRollback:
    """The optimizer's join-back elimination records ``(table, version)``
    uniqueness deps. A version bump inside a transaction must invalidate
    the plan *inside* that transaction only; after ROLLBACK the original
    deps (and the eliminated plan) are exactly valid again."""

    SQL = "SELECT c0 FROM (SELECT PROVENANCE a AS c0 FROM big LIMIT 3) q"

    def _db(self):
        conn = connect(optimizer="cost")
        conn.run("CREATE TABLE big (a int, b text)")
        conn.load_rows("big", [(i, f"t{i}") for i in range(10)])
        return conn

    def test_rolled_back_bump_revalidates_against_restored_state(self):
        conn = self._db()
        assert conn.execute(self.SQL).fetchall() == [(0,), (1,), (2,)]
        assert conn.counters.joinbacks_eliminated == 1

        conn.execute("BEGIN")
        conn.execute("INSERT INTO big VALUES (0, 'dup')")  # a no longer unique
        # Inside the transaction the cached eliminated plan is stale:
        # the duplicated key means the join-back legitimately duplicates
        # the limited row, and the plan must re-prepare to see it.
        assert conn.execute(self.SQL).fetchall() == [(0,), (0,), (1,), (2,)]
        conn.rollback()

        # After rollback the committed stamp is restored; the query must
        # again see exactly the original rows (not the stale in-txn plan,
        # not a stale-validated dep).
        assert conn.execute(self.SQL).fetchall() == [(0,), (1,), (2,)]

    def test_prepared_statement_across_rollback(self):
        conn = self._db()
        statement = conn.prepare(self.SQL)
        assert statement.execute().rows == [(0,), (1,), (2,)]
        conn.execute("BEGIN")
        conn.execute("INSERT INTO big VALUES (0, 'dup')")
        assert statement.execute().rows == [(0,), (0,), (1,), (2,)]
        conn.rollback()
        assert statement.execute().rows == [(0,), (1,), (2,)]

    def test_commit_reuses_transaction_local_plan_validity(self):
        # A plan prepared against the transaction's final working state
        # stays valid after COMMIT (the commit installs the same stamp),
        # so no spurious re-prepare happens.
        conn = self._db()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO big VALUES (50, 'new')")
        assert conn.execute(self.SQL).fetchall() == [(0,), (1,), (2,)]
        analyze_before = conn.counters.analyze
        conn.commit()
        assert conn.execute(self.SQL).fetchall() == [(0,), (1,), (2,)]
        assert conn.counters.analyze == analyze_before, "no re-prepare after commit"

    def test_uncommitted_stats_never_leak_to_other_sessions(self):
        db = Database()
        conn = connect(database=db, optimizer="cost")
        conn.run("CREATE TABLE big (a int, b text)")
        conn.load_rows("big", [(i, f"t{i}") for i in range(10)])
        other = connect(database=db, optimizer="cost")
        conn.execute("BEGIN")
        conn.execute("INSERT INTO big VALUES (0, 'dup')")
        # The other session plans against the committed (still unique)
        # state and gets the eliminated plan with correct results.
        assert other.execute(self.SQL).fetchall() == [(0,), (1,), (2,)]
        assert other.counters.joinbacks_eliminated == 1
        conn.rollback()


class TestConflictLosersLeaveNoTrace:
    def test_failed_commit_rolls_back_completely(self):
        db = Database()
        setup = connect(database=db)
        setup.run("CREATE TABLE t (a int, b text)")
        setup.load_rows("t", [(1, "x")])
        table = setup.catalog.table("t").table
        rows_before_txns = None

        one = connect(database=db)
        two = connect(database=db)
        one.execute("BEGIN")
        two.execute("BEGIN")
        one.execute("UPDATE t SET b = 'one' WHERE a = 1")
        two.execute("UPDATE t SET b = 'two' WHERE a = 1")
        one.commit()
        rows_before_txns = table.rows
        version = table.version
        with pytest.raises(SerializationError):
            two.commit()
        assert table.rows is rows_before_txns
        assert table.version == version
        assert setup.execute("SELECT b FROM t").fetchall() == [("one",)]


class TestDdlIsNotTransactional:
    """DDL cannot ride inside an explicit transaction: the catalog is
    not versioned, so a rolled-back CREATE/DROP could not be undone.
    The connection refuses up front instead of corrupting on rollback."""

    @pytest.fixture
    def conn(self):
        connection = connect()
        connection.run("CREATE TABLE t (a int)")
        connection.run("INSERT INTO t VALUES (1)")
        return connection

    @pytest.mark.parametrize(
        "ddl",
        [
            "CREATE TABLE u (a int)",
            "CREATE TABLE u AS SELECT a FROM t",
            "CREATE VIEW v AS SELECT a FROM t",
            "DROP TABLE t",
        ],
    )
    def test_ddl_inside_explicit_transaction_is_refused(self, conn, ddl):
        conn.begin()
        with pytest.raises(
            OperationalError, match="DDL is not transactional"
        ):
            conn.execute(ddl)
        # The refusal is a clean error: the transaction is still usable.
        assert conn.in_transaction
        conn.execute("INSERT INTO t VALUES (2)")
        conn.commit()
        assert conn.execute("SELECT COUNT(*) FROM t").fetchall() == [(2,)]

    def test_ddl_refusal_leaves_catalog_untouched(self, conn):
        conn.begin()
        with pytest.raises(OperationalError):
            conn.execute("CREATE TABLE u (a int)")
        conn.rollback()
        with pytest.raises(AnalyzeError):
            conn.execute("SELECT * FROM u")

    def test_ddl_works_between_transactions(self, conn):
        conn.begin()
        conn.execute("INSERT INTO t VALUES (2)")
        conn.commit()
        conn.execute("CREATE TABLE u (a int)")  # autocommit: fine
        conn.begin()
        conn.execute("INSERT INTO u VALUES (1)")
        conn.rollback()
        assert conn.execute("SELECT COUNT(*) FROM u").fetchall() == [(0,)]

    def test_ddl_does_not_open_the_implicit_transaction(self):
        connection = connect(autocommit=False)
        connection.run("CREATE TABLE t (a int)")
        # DDL self-committed: no transaction is left open around it.
        assert not connection.in_transaction
        connection.execute("INSERT INTO t VALUES (1)")
        assert connection.in_transaction
        with pytest.raises(OperationalError, match="DDL is not transactional"):
            connection.execute("CREATE TABLE u (a int)")
        connection.rollback()
