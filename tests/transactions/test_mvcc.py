"""MVCC transaction semantics: snapshots, conflicts, savepoints,
autocommit modes and rollback restoring state exactly."""

from __future__ import annotations

import pytest

import repro
from repro import (
    Database,
    OperationalError,
    ProgrammingError,
    SerializationError,
    connect,
)
from repro.sql import parse_sql
from repro.sql.printer import format_statement

ENGINES = ("row", "vectorized", "sqlite")


def _shared_db():
    db = Database()
    setup = connect(database=db)
    setup.run("CREATE TABLE t (a int, b text)")
    setup.load_rows("t", [(1, "x"), (2, "y"), (3, "z")])
    return db, setup


# ---------------------------------------------------------------------------
# Snapshot isolation
# ---------------------------------------------------------------------------


class TestSnapshots:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_reader_in_begin_sees_stable_snapshot(self, engine):
        """The acceptance scenario: a reader inside BEGIN observes a
        bit-identical snapshot while a concurrent writer commits."""
        db, writer = _shared_db()
        reader = connect(database=db, engine=engine)
        reader.execute("BEGIN")
        before = reader.execute("SELECT a, b FROM t").fetchall()
        prov_before = reader.execute("SELECT PROVENANCE a FROM t WHERE a > 1").fetchall()

        writer.execute("UPDATE t SET b = 'changed' WHERE a = 1")
        writer.execute("DELETE FROM t WHERE a = 3")
        writer.execute("INSERT INTO t VALUES (9, 'new')")

        assert reader.execute("SELECT a, b FROM t").fetchall() == before
        assert (
            reader.execute("SELECT PROVENANCE a FROM t WHERE a > 1").fetchall()
            == prov_before
        )
        reader.execute("COMMIT")
        after = reader.execute("SELECT a, b FROM t").fetchall()
        assert sorted(after) == [(1, "changed"), (2, "y"), (9, "new")]

    def test_snapshot_identical_across_all_engines(self):
        """Three readers — one per engine — open snapshots of the same
        database; each must stay bit-identical under concurrent commits
        and agree with the others."""
        db, writer = _shared_db()
        readers = {engine: connect(database=db, engine=engine) for engine in ENGINES}
        for reader in readers.values():
            reader.execute("BEGIN")
        baseline = {
            engine: reader.execute("SELECT a, b FROM t").fetchall()
            for engine, reader in readers.items()
        }
        assert len({tuple(rows) for rows in baseline.values()}) == 1

        writer.execute("UPDATE t SET b = 'w' WHERE a >= 1")
        for engine, reader in readers.items():
            assert (
                reader.execute("SELECT a, b FROM t").fetchall() == baseline[engine]
            ), engine

    def test_uncommitted_writes_are_private(self):
        db, setup = _shared_db()
        writer = connect(database=db)
        observer = connect(database=db)
        writer.execute("BEGIN")
        writer.execute("UPDATE t SET b = 'mine' WHERE a = 1")
        assert writer.execute("SELECT b FROM t WHERE a = 1").fetchall() == [("mine",)]
        assert observer.execute("SELECT b FROM t WHERE a = 1").fetchall() == [("x",)]
        writer.commit()
        assert observer.execute("SELECT b FROM t WHERE a = 1").fetchall() == [("mine",)]

    def test_repeatable_aggregate_reads(self):
        db, writer = _shared_db()
        reader = connect(database=db)
        reader.execute("BEGIN")
        total = reader.execute("SELECT sum(a) FROM t").fetchall()
        writer.execute("INSERT INTO t VALUES (100, 'big')")
        assert reader.execute("SELECT sum(a) FROM t").fetchall() == total


# ---------------------------------------------------------------------------
# Conflicts (first-committer-wins)
# ---------------------------------------------------------------------------


class TestConflicts:
    def test_first_committer_wins_on_same_row(self):
        db, _ = _shared_db()
        first = connect(database=db)
        second = connect(database=db)
        first.execute("BEGIN")
        second.execute("BEGIN")
        first.execute("UPDATE t SET b = 'first' WHERE a = 1")
        second.execute("UPDATE t SET b = 'second' WHERE a = 1")
        first.commit()
        with pytest.raises(SerializationError, match="concurrent transaction"):
            second.commit()
        # The loser was rolled back; its connection is reusable.
        assert not second.in_transaction
        assert second.execute("SELECT b FROM t WHERE a = 1").fetchall() == [("first",)]
        assert second.execute("SELECT b FROM t WHERE a = 2").fetchall() == [("y",)]

    def test_disjoint_row_updates_both_commit(self):
        # Row-level write sets: updating different rows of one table is
        # not a conflict — the second commit merges onto the first.
        db, observer = _shared_db()
        first = connect(database=db)
        second = connect(database=db)
        first.execute("BEGIN")
        second.execute("BEGIN")
        first.execute("UPDATE t SET b = 'first' WHERE a = 1")
        second.execute("UPDATE t SET b = 'second' WHERE a = 2")
        first.commit()
        second.commit()
        assert observer.execute(
            "SELECT a, b FROM t ORDER BY a"
        ).fetchall() == [(1, "first"), (2, "second"), (3, "z")]

    def test_update_vs_delete_of_same_row_conflicts(self):
        db, _ = _shared_db()
        first = connect(database=db)
        second = connect(database=db)
        first.execute("BEGIN")
        second.execute("BEGIN")
        first.execute("DELETE FROM t WHERE a = 1")
        second.execute("UPDATE t SET b = 'late' WHERE a = 1")
        first.commit()
        with pytest.raises(SerializationError, match="concurrent transaction"):
            second.commit()

    def test_concurrent_inserts_never_conflict(self):
        db, observer = _shared_db()
        first = connect(database=db)
        second = connect(database=db)
        first.execute("BEGIN")
        second.execute("BEGIN")
        first.execute("INSERT INTO t VALUES (10, 'ten')")
        second.execute("INSERT INTO t VALUES (11, 'eleven')")
        first.commit()
        second.commit()
        assert observer.execute("SELECT count(*) FROM t").fetchall() == [(5,)]

    def test_delete_merges_with_disjoint_update(self):
        # One side deletes row 3 while the other updates row 1: both
        # effects survive in the merged committed state.
        db, observer = _shared_db()
        first = connect(database=db)
        second = connect(database=db)
        first.execute("BEGIN")
        second.execute("BEGIN")
        first.execute("DELETE FROM t WHERE a = 3")
        second.execute("UPDATE t SET b = 'kept' WHERE a = 1")
        first.commit()
        second.commit()
        assert observer.execute(
            "SELECT a, b FROM t ORDER BY a"
        ).fetchall() == [(1, "kept"), (2, "y")]

    def test_truncate_is_a_coarse_write(self):
        # Whole-table operations keep table-granularity conflicts even
        # against a disjoint-looking row write.
        db, _ = _shared_db()
        first = connect(database=db)
        second = connect(database=db)
        first.execute("BEGIN")
        second.execute("BEGIN")
        first.execute("UPDATE t SET b = 'gone?' WHERE a = 1")
        second.execute("DELETE FROM t")  # full-table delete
        first.commit()
        with pytest.raises(SerializationError, match="concurrent transaction"):
            second.commit()

    def test_table_granularity_option_restores_coarse_conflicts(self):
        db = Database(conflict_granularity="table")
        setup = connect(database=db)
        setup.run("CREATE TABLE t (a int, b text)")
        setup.load_rows("t", [(1, "x"), (2, "y")])
        first = connect(database=db)
        second = connect(database=db)
        first.execute("BEGIN")
        second.execute("BEGIN")
        first.execute("UPDATE t SET b = 'first' WHERE a = 1")
        second.execute("UPDATE t SET b = 'second' WHERE a = 2")
        first.commit()
        with pytest.raises(SerializationError, match="concurrent transaction"):
            second.commit()

    def test_read_only_transactions_never_conflict(self):
        db, _ = _shared_db()
        reader = connect(database=db)
        writer = connect(database=db)
        reader.execute("BEGIN")
        reader.execute("SELECT a FROM t").fetchall()
        writer.execute("UPDATE t SET b = 'w' WHERE a = 1")
        reader.commit()  # no writes, nothing to serialize

    def test_no_op_update_does_not_conflict(self):
        db, _ = _shared_db()
        one = connect(database=db)
        two = connect(database=db)
        one.execute("BEGIN")
        two.execute("BEGIN")
        one.execute("UPDATE t SET b = 'hit' WHERE a = 1")
        two.execute("UPDATE t SET b = 'miss' WHERE a = 999")  # matches nothing
        one.commit()
        two.commit()

    def test_disjoint_tables_commit_independently(self):
        db, setup = _shared_db()
        setup.run("CREATE TABLE u (v int)")
        one = connect(database=db)
        two = connect(database=db)
        one.execute("BEGIN")
        two.execute("BEGIN")
        one.execute("UPDATE t SET b = 'one' WHERE a = 1")
        two.execute("INSERT INTO u VALUES (5)")
        one.commit()
        two.commit()
        assert setup.execute("SELECT v FROM u").fetchall() == [(5,)]

    def test_autocommit_statement_retries_conflicts(self):
        # Two sessions racing single UPDATE statements: autocommit
        # statements retry on a fresh snapshot instead of surfacing the
        # serialization failure to the caller.
        db, setup = _shared_db()
        one = connect(database=db)
        one.execute("UPDATE t SET b = 'o' WHERE a = 1")  # plain autocommit write
        assert setup.execute("SELECT b FROM t WHERE a = 1").fetchall() == [("o",)]


# ---------------------------------------------------------------------------
# Rollback restores everything
# ---------------------------------------------------------------------------


class TestRollback:
    def test_rollback_restores_rows_and_version(self):
        db, setup = _shared_db()
        table = setup.catalog.table("t").table
        rows_before = table.rows
        version_before = table.version
        setup.execute("BEGIN")
        setup.execute("DELETE FROM t")
        setup.execute("INSERT INTO t VALUES (42, 'q')")
        setup.rollback()
        # Not just equal content: the exact committed state object and
        # stamp are restored, so every version-keyed cache revalidates.
        assert table.rows is rows_before
        assert table.version == version_before

    def test_rollback_restores_catalog_stats(self):
        from repro.storage import mvcc

        db, setup = _shared_db()
        entry = setup.catalog.table("t")
        stats_before = entry.stats()
        setup.execute("BEGIN")
        setup.execute("INSERT INTO t VALUES (1000, 'big')")
        # The transaction is active only while its statements run; enter
        # it explicitly to observe the transaction-local statistics.
        with mvcc.activate(setup._txn):
            in_txn = entry.stats()
            assert in_txn.row_count == stats_before.row_count + 1
        setup.rollback()
        after = entry.stats()
        assert after.row_count == stats_before.row_count
        assert after.columns["a"].max_value == stats_before.columns["a"].max_value

    def test_close_rolls_back_open_transaction(self):
        db, setup = _shared_db()
        other = connect(database=db)
        other.execute("BEGIN")
        other.execute("DELETE FROM t")
        other.close()
        assert len(setup.execute("SELECT a FROM t").fetchall()) == 3


# ---------------------------------------------------------------------------
# Savepoints
# ---------------------------------------------------------------------------


class TestSavepoints:
    def test_rollback_to_savepoint(self):
        db, setup = _shared_db()
        setup.execute("BEGIN")
        setup.execute("UPDATE t SET b = 'kept' WHERE a = 1")
        setup.execute("SAVEPOINT sp")
        setup.execute("DELETE FROM t")
        assert setup.execute("SELECT count(*) FROM t").fetchall() == [(0,)]
        setup.execute("ROLLBACK TO SAVEPOINT sp")
        assert setup.execute("SELECT count(*) FROM t").fetchall() == [(3,)]
        assert setup.execute("SELECT b FROM t WHERE a = 1").fetchall() == [("kept",)]
        setup.commit()
        assert setup.execute("SELECT b FROM t WHERE a = 1").fetchall() == [("kept",)]

    def test_savepoint_can_be_rolled_back_to_twice(self):
        db, setup = _shared_db()
        setup.execute("BEGIN")
        setup.execute("SAVEPOINT sp")
        setup.execute("DELETE FROM t WHERE a = 1")
        setup.execute("ROLLBACK TO sp")  # SAVEPOINT keyword optional
        setup.execute("DELETE FROM t WHERE a = 2")
        setup.execute("ROLLBACK TO SAVEPOINT sp")
        setup.commit()
        assert len(setup.execute("SELECT a FROM t").fetchall()) == 3

    def test_release_forgets_savepoint(self):
        db, setup = _shared_db()
        setup.execute("BEGIN")
        setup.execute("SAVEPOINT sp")
        setup.execute("RELEASE SAVEPOINT sp")
        with pytest.raises(OperationalError, match="no such savepoint"):
            setup.execute("ROLLBACK TO SAVEPOINT sp")
        setup.rollback()

    def test_nested_savepoints_unwind_in_order(self):
        db, setup = _shared_db()
        setup.execute("BEGIN")
        setup.execute("SAVEPOINT outer_sp")
        setup.execute("DELETE FROM t WHERE a = 1")
        setup.execute("SAVEPOINT inner_sp")
        setup.execute("DELETE FROM t WHERE a = 2")
        setup.execute("ROLLBACK TO SAVEPOINT inner_sp")
        assert setup.execute("SELECT count(*) FROM t").fetchall() == [(2,)]
        setup.execute("ROLLBACK TO SAVEPOINT outer_sp")
        assert setup.execute("SELECT count(*) FROM t").fetchall() == [(3,)]
        # Rolling back to outer dropped inner.
        with pytest.raises(OperationalError, match="no such savepoint"):
            setup.execute("ROLLBACK TO SAVEPOINT inner_sp")
        setup.rollback()

    def test_savepoint_outside_transaction_errors(self):
        _, setup = _shared_db()
        with pytest.raises(OperationalError, match="no transaction in progress"):
            setup.execute("SAVEPOINT sp")
        with pytest.raises(OperationalError, match="no transaction in progress"):
            setup.execute("ROLLBACK TO SAVEPOINT sp")


# ---------------------------------------------------------------------------
# Connection API / PEP 249 semantics
# ---------------------------------------------------------------------------


class TestConnectionSemantics:
    def test_begin_twice_errors(self):
        _, setup = _shared_db()
        setup.execute("BEGIN")
        with pytest.raises(OperationalError, match="already in progress"):
            setup.execute("BEGIN")
        setup.rollback()

    def test_commit_rollback_without_transaction_are_noops(self):
        _, setup = _shared_db()
        setup.commit()
        setup.rollback()
        setup.execute("COMMIT")
        setup.execute("ROLLBACK")

    def test_start_transaction_spellings(self):
        _, setup = _shared_db()
        for begin in ("BEGIN", "BEGIN TRANSACTION", "BEGIN WORK", "START TRANSACTION"):
            setup.execute(begin)
            assert setup.in_transaction
            setup.execute("COMMIT WORK")
            assert not setup.in_transaction

    def test_manual_commit_mode_implicit_transaction(self):
        db, setup = _shared_db()
        manual = connect(database=db, autocommit=False)
        observer = connect(database=db)
        manual.execute("UPDATE t SET b = 'm' WHERE a = 1")  # opens the txn
        assert manual.in_transaction
        assert observer.execute("SELECT b FROM t WHERE a = 1").fetchall() == [("x",)]
        manual.commit()
        assert observer.execute("SELECT b FROM t WHERE a = 1").fetchall() == [("m",)]

    def test_manual_mode_rollback_discards(self):
        db, setup = _shared_db()
        manual = connect(database=db, autocommit=False)
        manual.execute("DELETE FROM t")
        manual.rollback()
        assert len(setup.execute("SELECT a FROM t").fetchall()) == 3

    def test_enabling_autocommit_commits_open_transaction(self):
        db, setup = _shared_db()
        manual = connect(database=db, autocommit=False)
        manual.execute("UPDATE t SET b = 'c' WHERE a = 2")
        manual.autocommit = True
        assert setup.execute("SELECT b FROM t WHERE a = 2").fetchall() == [("c",)]

    def test_transaction_control_rejects_parameters(self):
        _, setup = _shared_db()
        with pytest.raises(ProgrammingError, match="no parameters"):
            setup.execute("BEGIN", (1,))

    def test_transaction_control_rejects_executemany(self):
        _, setup = _shared_db()
        with pytest.raises(ProgrammingError, match="executemany"):
            setup.executemany("COMMIT", [(), ()])

    def test_statement_error_keeps_transaction_usable(self):
        # sqlite-style: a failed statement inside an explicit transaction
        # has no effect but the transaction itself stays open.
        _, setup = _shared_db()
        setup.execute("BEGIN")
        setup.execute("UPDATE t SET b = 'pre' WHERE a = 1")
        with pytest.raises(repro.PermError):
            setup.execute("SELECT nope FROM t")
        assert setup.in_transaction
        setup.commit()
        assert setup.execute("SELECT b FROM t WHERE a = 1").fetchall() == [("pre",)]

    def test_database_connect_helper(self):
        db = Database()
        conn = db.connect(engine="row")
        conn.execute("CREATE TABLE z (i int)")
        assert db.catalog.has_table("z")

    def test_manager_telemetry_counters(self):
        db, setup = _shared_db()
        begins = db.manager.begin_count
        commits = db.manager.commit_count
        setup.execute("BEGIN")
        setup.execute("INSERT INTO t VALUES (7, 'w')")
        setup.commit()
        assert db.manager.begin_count > begins
        assert db.manager.commit_count == commits + 1  # writing commits only

    def test_append_only_insert_does_not_copy_the_table(self):
        # The copy-on-write working set stays in overlay mode for
        # INSERT-only transactions: the snapshot base list is reused by
        # reference, so a single-row INSERT is O(1), not O(table).
        from repro.storage import mvcc

        db, setup = _shared_db()
        table = setup.catalog.table("t").table
        base_rows = table.rows
        setup.execute("BEGIN")
        setup.execute("INSERT INTO t VALUES (50, 'new')")
        txn = setup._txn
        working = txn._working[table]
        assert working._base is base_rows, "INSERT must not materialize a table copy"
        with mvcc.activate(txn):
            assert table.rows[-1] == (50, "new")  # reading materializes
        assert working._base is None
        setup.rollback()


# ---------------------------------------------------------------------------
# SQL surface round-trips
# ---------------------------------------------------------------------------


class TestTransactionSql:
    @pytest.mark.parametrize(
        "sql, canonical",
        [
            ("begin", "BEGIN"),
            ("BEGIN TRANSACTION", "BEGIN"),
            ("start transaction", "BEGIN"),
            ("commit work", "COMMIT"),
            ("rollback", "ROLLBACK"),
            ("savepoint sp1", "SAVEPOINT sp1"),
            ("rollback to sp1", "ROLLBACK TO SAVEPOINT sp1"),
            ("rollback to savepoint sp1", "ROLLBACK TO SAVEPOINT sp1"),
            ("release savepoint sp1", "RELEASE SAVEPOINT sp1"),
            ("release sp1", "RELEASE SAVEPOINT sp1"),
        ],
    )
    def test_parse_and_print(self, sql, canonical):
        (statement,) = parse_sql(sql)
        assert format_statement(statement) == canonical
        # The canonical text re-parses to the same statement.
        (again,) = parse_sql(canonical)
        assert format_statement(again) == canonical

    def test_keywords_stay_usable_as_identifiers(self):
        # The new keywords are non-reserved: tables/columns named with
        # them keep working.
        conn = connect()
        conn.run("CREATE TABLE release (work int, start int)")
        conn.run("INSERT INTO release VALUES (1, 2)")
        assert conn.execute("SELECT work, start FROM release").fetchall() == [(1, 2)]

    def test_keywords_stay_usable_as_bare_from_aliases(self):
        # A FROM item aliased without AS by a non-reserved keyword
        # (including the new transaction words) must keep parsing.
        conn = connect()
        conn.run("CREATE TABLE t (a int)")
        conn.run("INSERT INTO t VALUES (5)")
        for alias in ("start", "work", "transaction", "savepoint", "count"):
            assert conn.execute(f"SELECT {alias}.a FROM t {alias}").fetchall() == [(5,)]
        # The SQL-PLE FROM modifiers are not swallowed as aliases.
        assert conn.execute("SELECT a FROM t BASERELATION").fetchall() == [(5,)]

    def test_transaction_control_accepts_empty_parameter_sequence(self):
        _, setup = _shared_db()
        setup.execute("BEGIN", ())
        setup.execute("COMMIT", [])

    def test_multi_statement_script_with_transaction(self):
        _, setup = _shared_db()
        setup.run(
            "BEGIN; UPDATE t SET b = 's' WHERE a = 1; COMMIT"
        )
        assert setup.execute("SELECT b FROM t WHERE a = 1").fetchall() == [("s",)]
