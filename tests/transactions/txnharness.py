"""Seeded concurrent-transaction schedules with an independent oracle.

A *schedule* is a fully deterministic interleaving of several
transactions over a shared :class:`repro.Database`: each transaction is
a seeded sequence of DML, provenance/aggregate/join reads, savepoint
operations and a final COMMIT or ROLLBACK, and the global step order
interleaves them randomly (per seed). The runner executes the steps one
at a time from a single thread, switching between per-transaction
connections — intra-statement execution is atomic in the engine, so the
statement-level interleaving is the concurrency that matters, and a
schedule replays bit-identically from its seed.

The oracle never looks inside the MVCC machinery. It keeps:

* ``committed`` — every table as a list of ``(row_id, row)`` pairs
  (row ids are the *oracle's own*, assigned independently of the
  engine's hidden identities), updated only when a COMMIT is expected
  to succeed (serial commit order = step order);
* ``last_write`` — for each oracle row id, the step index of the last
  successful commit that updated or deleted it;
* per transaction: the committed ``(row_id, row)`` state captured at
  its BEGIN (its snapshot), and the *effective* DML list —
  savepoint/rollback-to are modelled as plain list truncation,
  mirroring the SQL semantics.

Every read inside transaction T is then checked against first
principles: re-create T's snapshot in a scratch single-session
database, replay T's effective DML through plain SQL, run the same
SELECT, and require bit-identical rows (order included — all engines
guarantee deterministic row order). That is exactly the acceptance
property "every transaction's reads are explainable by a serial order
of the commits it observed, plus its own writes".

Commit outcomes are predicted independently at **row granularity**: T's
effective DML is replayed statement by statement over its snapshot
while tracking row identities positionally (UPDATE preserves row order
and count; DELETE keeps survivors in order, and since every predicate
is content-based, content-equal rows always share its fate, so a
greedy order-preserving match recovers exactly which ids died; INSERT
appends fresh ids). A row enters T's write set only if a statement
changed its content or deleted it. T's COMMIT must fail with
:class:`repro.SerializationError` iff some id in that write set was
written by another transaction's successful commit after T's BEGIN
(first-committer-wins per row) — and must succeed otherwise, with T's
per-row effects merged onto the current committed state exactly as the
engine merges them (deleted ids dropped, updated ids rewritten in
place, inserted rows appended).

On any mismatch the runner raises :class:`ScheduleFailure` carrying the
seed and the full step listing, and dumps it under
``.txn-failures/`` so a failing seed replays locally and uploads as a
CI artifact.
"""

from __future__ import annotations

import itertools
import os
import random
from dataclasses import dataclass, field
from typing import Optional

import repro
from repro import SerializationError

FAILURE_DIR = os.path.join(os.getcwd(), ".txn-failures")

# ---------------------------------------------------------------------------
# Schedule model
# ---------------------------------------------------------------------------

# Tables every schedule runs over (small on purpose: more collisions).
SCHEMA_SQL = (
    "CREATE TABLE acct (id int, grp text, bal int)",
    "CREATE TABLE book (id int, acct int, amt int)",
)
TABLES = ("acct", "book")
# SELECT * spellings used to capture table contents in heap order.
DUMP_SQL = {
    "acct": "SELECT id, grp, bal FROM acct",
    "book": "SELECT id, acct, amt FROM book",
}

# Materialized-view mode (``generate_schedule(..., matviews=True)``):
# the database additionally carries these matviews over the schedule
# tables — a delta-safe filter, a delta-safe join, a provenance-carrying
# one, and a non-delta-safe aggregate (stale-and-recompute path) — and
# readers query *through* them while writers churn the base tables.
# The oracle stays first-principles: the scratch database gets plain
# virtual VIEWs of the same names (reading a fresh matview is required
# to be bit-identical to unfolding its definition), so every check is
# still "replay the snapshot plus own writes, run the same SQL".
MATVIEW_DEFS = {
    "hot_acct": "SELECT id, grp, bal FROM acct WHERE bal >= 20",
    "acct_book": (
        "SELECT a.id, a.grp, b.amt FROM acct a JOIN book b ON b.acct = a.id"
    ),
    "grp_tot": "SELECT grp, sum(bal) AS total FROM acct GROUP BY grp",
}
MATVIEW_DDL = tuple(
    f"CREATE MATERIALIZED VIEW {name} AS {defining}"
    for name, defining in MATVIEW_DEFS.items()
) + (
    "CREATE MATERIALIZED VIEW prov_hot WITH PROVENANCE AS "
    "SELECT id, bal FROM acct WHERE bal >= 40",
)
MATVIEW_NAMES = tuple(MATVIEW_DEFS) + ("prov_hot",)
# The provenance matview has no plain-view twin in the scratch database
# (virtual views don't store provenance columns); its reads translate to
# the equivalent SELECT PROVENANCE over the base table instead. Row
# values compare exactly — the matview stores the same provenance
# columns the live rewrite produces.
ORACLE_SQL = {
    "SELECT * FROM prov_hot": "SELECT PROVENANCE id, bal FROM acct WHERE bal >= 40",
}
# Fresh-session checks run after the last step: by then every commit has
# landed, so an autocommit read through each matview (auto-refreshing
# the stale aggregate on the way) must match the serial committed state.
MATVIEW_FINAL_CHECKS = (
    "SELECT * FROM hot_acct",
    "SELECT * FROM acct_book",
    "SELECT grp, total FROM grp_tot ORDER BY grp",
    "SELECT * FROM prov_hot",
)


@dataclass
class Step:
    """One schedule step: transaction *txn* runs *sql*.

    ``kind`` drives the oracle: "begin", "commit", "rollback", "dml"
    (``table`` set), "read", "savepoint"/"rollback_to"/"release"
    (``name`` set).
    """

    txn: int
    kind: str
    sql: str = ""
    table: Optional[str] = None
    name: Optional[str] = None

    def describe(self) -> str:
        return f"T{self.txn}: {self.sql or self.kind.upper()}"


@dataclass
class Schedule:
    seed: int
    initial: dict[str, list[tuple]]
    steps: list[Step]
    matviews: bool = False

    def describe(self) -> str:
        lines = [f"seed {self.seed}" + (" (matviews)" if self.matviews else "")]
        for table, rows in self.initial.items():
            lines.append(f"  initial {table}: {rows}")
        lines.extend(f"  {i:3d}. {step.describe()}" for i, step in enumerate(self.steps))
        return "\n".join(lines)


class ScheduleFailure(AssertionError):
    """A schedule violated snapshot consistency; replay with its seed."""

    def __init__(self, message: str, schedule: Schedule, engine: str):
        self.schedule = schedule
        self.engine = engine
        path = _dump_failure(schedule, engine, message)
        flags = ", matviews=True" if schedule.matviews else ""
        super().__init__(
            f"[seed {schedule.seed}, engine {engine}] {message}\n"
            f"schedule dumped to {path}; replay with: "
            f"run_schedule(generate_schedule({schedule.seed}{flags}), "
            f"engine={engine!r})"
        )


def _dump_failure(schedule: Schedule, engine: str, message: str) -> str:
    os.makedirs(FAILURE_DIR, exist_ok=True)
    variant = "_mv" if schedule.matviews else ""
    path = os.path.join(FAILURE_DIR, f"seed_{schedule.seed}{variant}_{engine}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(message + "\n\n" + schedule.describe() + "\n")
    return path


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------


def generate_schedule(
    seed: int, transactions: int = 4, max_ops: int = 5, matviews: bool = False
) -> Schedule:
    """A deterministic schedule from *seed*: *transactions* interleaved
    transactions of up to *max_ops* DML/read operations each. With
    *matviews*, reads also go through the schedule's materialized views
    (``matviews=False`` schedules are bit-identical to earlier seeds)."""
    rng = random.Random(seed)
    groups = ["a", "b", "c"]
    initial = {
        "acct": [
            (i, rng.choice(groups), rng.randrange(0, 100))
            for i in range(1, rng.randrange(5, 9))
        ],
        "book": [
            (i, rng.randrange(1, 6), rng.randrange(-50, 50)) for i in range(1, 5)
        ],
    }
    next_id = 100  # fresh ids for inserts, disjoint per transaction

    per_txn: list[list[Step]] = []
    for txn in range(transactions):
        ops: list[Step] = [Step(txn, "begin", "BEGIN")]
        open_savepoints: list[str] = []
        for op_index in range(rng.randrange(2, max_ops + 1)):
            roll = rng.random()
            if roll < 0.12 and not open_savepoints:
                name = f"sp{txn}_{op_index}"
                ops.append(Step(txn, "savepoint", f"SAVEPOINT {name}", name=name))
                open_savepoints.append(name)
            elif roll < 0.2 and open_savepoints:
                name = rng.choice(open_savepoints)
                ops.append(
                    Step(txn, "rollback_to", f"ROLLBACK TO SAVEPOINT {name}", name=name)
                )
            elif roll < 0.55:
                ops.append(_random_write(rng, txn, next_id))
                next_id += 10
            else:
                ops.append(Step(txn, "read", _random_read(rng, matviews)))
        end = "commit" if rng.random() < 0.75 else "rollback"
        ops.append(Step(txn, end, end.upper()))
        per_txn.append(ops)

    # Random interleaving preserving each transaction's internal order.
    cursors = [0] * transactions
    steps: list[Step] = []
    while any(cursors[t] < len(per_txn[t]) for t in range(transactions)):
        candidates = [t for t in range(transactions) if cursors[t] < len(per_txn[t])]
        txn = rng.choice(candidates)
        steps.append(per_txn[txn][cursors[txn]])
        cursors[txn] += 1
    return Schedule(seed=seed, initial=initial, steps=steps, matviews=matviews)


def _random_write(rng: random.Random, txn: int, next_id: int) -> Step:
    groups = ["a", "b", "c"]
    choice = rng.randrange(5)
    if choice == 0:
        row = (next_id + txn, rng.choice(groups), rng.randrange(0, 100))
        return Step(txn, "dml", f"INSERT INTO acct VALUES {row!r}", table="acct")
    if choice == 1:
        delta, grp = rng.randrange(1, 20), rng.choice(groups)
        return Step(
            txn, "dml",
            f"UPDATE acct SET bal = bal + {delta} WHERE grp = '{grp}'",
            table="acct",
        )
    if choice == 2:
        ident, amount = rng.randrange(1, 9), rng.randrange(0, 120)
        return Step(
            txn, "dml",
            f"UPDATE acct SET bal = {amount} WHERE id = {ident}",
            table="acct",
        )
    if choice == 3:
        row = (next_id + txn, rng.randrange(1, 6), rng.randrange(-50, 50))
        return Step(txn, "dml", f"INSERT INTO book VALUES {row!r}", table="book")
    bound = rng.randrange(-40, 10)
    return Step(txn, "dml", f"DELETE FROM book WHERE amt < {bound}", table="book")


def _random_read(rng: random.Random, matviews: bool = False) -> str:
    queries = [
        "SELECT id, grp, bal FROM acct",
        "SELECT grp, sum(bal) FROM acct GROUP BY grp ORDER BY grp",
        "SELECT PROVENANCE id, bal FROM acct WHERE bal > {n}",
        "SELECT PROVENANCE grp, count(*) FROM acct GROUP BY grp ORDER BY grp",
        "SELECT a.id, b.amt FROM acct a JOIN book b ON b.acct = a.id",
        "SELECT PROVENANCE a.grp, b.amt FROM acct a JOIN book b ON b.acct = a.id WHERE b.amt > {m}",
        "SELECT sum(bal) FROM acct",
        "SELECT count(*) FROM book",
    ]
    if matviews:
        queries += [
            "SELECT * FROM hot_acct",
            "SELECT id, bal FROM hot_acct WHERE bal < {n}",
            "SELECT grp, count(*) FROM hot_acct GROUP BY grp ORDER BY grp",
            "SELECT * FROM acct_book",
            "SELECT h.id, h.bal, b.amt FROM hot_acct h JOIN book b ON b.acct = h.id",
            "SELECT grp, total FROM grp_tot ORDER BY grp",
            "SELECT * FROM prov_hot",
        ]
    sql = rng.choice(queries)
    return sql.format(n=rng.randrange(0, 80), m=rng.randrange(-30, 30))


# ---------------------------------------------------------------------------
# Oracle scratch database
# ---------------------------------------------------------------------------


class Scratch:
    """A private single-session database used to recompute expected
    states and results from first principles (always the row engine,
    independently of the engine under test)."""

    def __init__(self, matviews: bool = False) -> None:
        self.conn = repro.connect(engine="row")
        for sql in SCHEMA_SQL:
            self.conn.execute(sql)
        if matviews:
            # Plain virtual views under the matview names: the oracle's
            # statement of "a matview read is the unfolded query over
            # the visible snapshot", with no materialization machinery.
            for name, defining in MATVIEW_DEFS.items():
                self.conn.execute(f"CREATE VIEW {name} AS {defining}")

    def reset(self, state: dict[str, list[tuple]]) -> None:
        for table in TABLES:
            self.conn.execute(f"DELETE FROM {table}")
            if state[table]:
                self.conn.load_rows(table, state[table])

    def replay(self, state: dict[str, list[tuple]], dml: list[str]) -> None:
        self.reset(state)
        for sql in dml:
            self.conn.execute(sql)

    def dump(self) -> dict[str, list[tuple]]:
        return {
            table: self.conn.execute(DUMP_SQL[table]).fetchall() for table in TABLES
        }

    def query(self, sql: str) -> list[tuple]:
        return self.conn.execute(sql).fetchall()

    def close(self) -> None:
        self.conn.close()


# ---------------------------------------------------------------------------
# Row-identity tracking (the oracle's own ids, independent of the engine)
# ---------------------------------------------------------------------------

Model = dict[str, list[tuple[int, tuple]]]  # table -> [(row_id, row), ...]


def _content(model: Model) -> dict[str, list[tuple]]:
    return {table: [row for _, row in pairs] for table, pairs in model.items()}


def _replay_with_ids(
    scratch: Scratch,
    snapshot: Model,
    effective: list[tuple[str, str]],
    alloc,
) -> tuple[Model, dict[str, set[int]]]:
    """Replay *effective* DML over *snapshot*, tracking which oracle row
    ids each statement updates (to different content) or deletes.
    Returns the transaction's final model and its per-table write set.

    Identity follows position: UPDATE preserves row order and count, so
    position i keeps its id; DELETE preserves survivor order, and since
    predicates are content-based, content-equal rows share the
    predicate's fate — a greedy order-preserving match therefore
    recovers the deleted ids exactly; INSERT appends rows with fresh
    ids from *alloc*."""
    model: Model = {table: list(snapshot[table]) for table in TABLES}
    written: dict[str, set[int]] = {table: set() for table in TABLES}
    scratch.reset(_content(model))
    for sql, table in effective:
        scratch.conn.execute(sql)
        new_rows = scratch.query(DUMP_SQL[table])
        pairs = model[table]
        verb = sql.split(None, 1)[0].upper()
        if verb == "INSERT":
            for row in new_rows[len(pairs):]:
                pairs.append((next(alloc), row))
        elif verb == "UPDATE":
            assert len(new_rows) == len(pairs), "UPDATE changed row count"
            for i, row in enumerate(new_rows):
                rid, previous = pairs[i]
                if row != previous:
                    pairs[i] = (rid, row)
                    written[table].add(rid)
        elif verb == "DELETE":
            kept: list[tuple[int, tuple]] = []
            cursor = 0
            for rid, previous in pairs:
                if cursor < len(new_rows) and new_rows[cursor] == previous:
                    kept.append((rid, previous))
                    cursor += 1
                else:
                    written[table].add(rid)
            assert cursor == len(new_rows), "DELETE reordered surviving rows"
            model[table] = kept
        else:  # pragma: no cover - generator invariant
            raise AssertionError(f"untracked DML verb {verb!r}")
    return model, written


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


@dataclass
class _TxnState:
    conn: repro.Connection
    snapshot: Model = field(default_factory=dict)  # (row_id, row) pairs
    begin_step: int = -1
    # Effective DML after savepoint truncation (mirrors SQL semantics
    # with plain list operations — independent of the MVCC code).
    effective: list[tuple[str, str]] = field(default_factory=list)  # (sql, table)
    savepoints: list[tuple[str, int]] = field(default_factory=list)  # (name, length)
    finished: bool = False

    @property
    def dml(self) -> list[str]:
        return [sql for sql, _ in self.effective]

    @property
    def snapshot_rows(self) -> dict[str, list[tuple]]:
        return _content(self.snapshot)


def run_schedule(schedule: Schedule, engine: str = "row") -> dict[str, int]:
    """Execute *schedule* on *engine*, checking every read and commit
    against the oracle. Returns counters (reads checked, commits,
    conflicts) so tests can assert the schedule exercised something."""
    database = repro.Database()
    setup = repro.connect(database=database)
    for sql in SCHEMA_SQL:
        setup.execute(sql)
    for table, rows in schedule.initial.items():
        setup.load_rows(table, rows)
    if schedule.matviews:
        for sql in MATVIEW_DDL:
            setup.execute(sql)

    scratch = Scratch(matviews=schedule.matviews)
    # The serially-evolving committed state, with the oracle's own row
    # identities (updated only at commits).
    alloc = itertools.count(1)
    committed: Model = {
        table: [(next(alloc), row) for row in rows]
        for table, rows in schedule.initial.items()
    }
    # Per row id, the step index of the last successful commit that
    # updated or deleted it (first-committer-wins at row granularity).
    last_write: dict[int, int] = {}

    txns: dict[int, _TxnState] = {}
    counters = {
        "reads": 0,
        "commits": 0,
        "conflicts": 0,
        "rollbacks": 0,
        "matview_reads": 0,
    }

    def fail(step_index: int, step: Step, message: str) -> None:
        raise ScheduleFailure(
            f"step {step_index} ({step.describe()}): {message}", schedule, engine
        )

    for index, step in enumerate(schedule.steps):
        state = txns.get(step.txn)
        if step.kind == "begin":
            conn = repro.connect(database=database, engine=engine)
            conn.execute("BEGIN")
            txns[step.txn] = _TxnState(
                conn=conn,
                snapshot={table: list(pairs) for table, pairs in committed.items()},
                begin_step=index,
            )
            continue
        assert state is not None and not state.finished, "generator bug: op after end"
        if step.kind == "dml":
            state.conn.execute(step.sql)
            state.effective.append((step.sql, step.table or ""))
        elif step.kind == "savepoint":
            state.conn.execute(step.sql)
            state.savepoints.append((step.name or "", len(state.effective)))
        elif step.kind == "rollback_to":
            state.conn.execute(step.sql)
            for name, length in reversed(state.savepoints):
                if name == step.name:
                    del state.effective[length:]
                    break
        elif step.kind == "read":
            actual = state.conn.execute(step.sql)
            oracle_sql = ORACLE_SQL.get(step.sql, step.sql)
            scratch.replay(state.snapshot_rows, state.dml)
            expected_rows = scratch.query(oracle_sql)
            if actual.fetchall() != expected_rows:
                scratch.replay(state.snapshot_rows, state.dml)
                fail(
                    index,
                    step,
                    "read is not explainable by the transaction's snapshot "
                    "plus its own writes\n"
                    f"  expected: {expected_rows}\n"
                    f"  actual:   {state.conn.execute(step.sql).fetchall()}",
                )
            counters["reads"] += 1
            if any(name in step.sql for name in MATVIEW_NAMES):
                counters["matview_reads"] += 1
        elif step.kind == "rollback":
            state.conn.execute("ROLLBACK")
            state.finished = True
            counters["rollbacks"] += 1
            # Committed state is untouched; verify via a fresh autocommit
            # read on the same connection (new snapshot).
            observed = {
                table: state.conn.execute(DUMP_SQL[table]).fetchall()
                for table in TABLES
            }
            if observed != _content(committed):
                fail(index, step, f"ROLLBACK leaked writes: {observed}")
            state.conn.close()
        elif step.kind == "commit":
            model, written = _replay_with_ids(
                scratch, state.snapshot, state.effective, alloc
            )
            conflict = any(
                last_write.get(rid, -1) > state.begin_step
                for table in TABLES
                for rid in written[table]
            )
            if conflict:
                try:
                    state.conn.execute("COMMIT")
                except SerializationError:
                    counters["conflicts"] += 1
                else:
                    fail(index, step, "expected a serialization conflict, commit succeeded")
            else:
                try:
                    state.conn.execute("COMMIT")
                except SerializationError as error:
                    fail(index, step, f"unexpected serialization failure: {error}")
                counters["commits"] += 1
                # Merge the transaction's per-row effects onto the
                # current committed state (exactly the engine's merge:
                # deleted ids dropped, updated ids rewritten in place,
                # inserted rows appended in the transaction's order).
                for table in TABLES:
                    snapshot_ids = {rid for rid, _ in state.snapshot[table]}
                    content = {rid: row for rid, row in model[table]}
                    deleted = {
                        rid for rid in written[table] if rid not in content
                    }
                    updated = written[table] - deleted
                    inserted = [
                        (rid, row)
                        for rid, row in model[table]
                        if rid not in snapshot_ids
                    ]
                    if not (written[table] or inserted):
                        continue
                    merged: list[tuple[int, tuple]] = []
                    for rid, row in committed[table]:
                        if rid in deleted:
                            continue
                        merged.append((rid, content[rid]) if rid in updated else (rid, row))
                    merged.extend(inserted)
                    committed[table] = merged
                    for rid in written[table]:
                        last_write[rid] = index
                    for rid, _ in inserted:
                        last_write[rid] = index
            state.finished = True
            # Either way the connection now reads the latest committed state.
            observed = {
                table: state.conn.execute(DUMP_SQL[table]).fetchall()
                for table in TABLES
            }
            if observed != _content(committed):
                fail(
                    index,
                    step,
                    f"post-commit state diverged:\n  expected {_content(committed)}\n"
                    f"  observed {observed}",
                )
            state.conn.close()
        else:  # pragma: no cover - generator invariant
            raise AssertionError(f"unknown step kind {step.kind!r}")

    # Final convergence: a fresh session sees exactly the serial result.
    final = {table: setup.execute(DUMP_SQL[table]).fetchall() for table in TABLES}
    if final != _content(committed):
        raise ScheduleFailure(
            f"final state diverged from serial commit order:\n"
            f"  expected {_content(committed)}\n  observed {final}",
            schedule,
            engine,
        )
    if schedule.matviews:
        # Autocommit reads through every matview (auto-refreshing any
        # view the commits left stale) must agree with the serial
        # committed state — incremental maintenance and recompute both
        # land on the unfolded answer.
        scratch.reset(_content(committed))
        for sql in MATVIEW_FINAL_CHECKS:
            expected = scratch.query(ORACLE_SQL.get(sql, sql))
            observed = setup.execute(sql).fetchall()
            if observed != expected:
                raise ScheduleFailure(
                    f"materialized view diverged after the last commit:\n"
                    f"  {sql}\n  expected {expected}\n  observed {observed}",
                    schedule,
                    engine,
                )
    scratch.close()
    setup.close()
    return counters
