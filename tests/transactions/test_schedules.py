"""The seeded concurrent-workload harness: every generated schedule must
be snapshot-consistent on every engine.

Each test runs one seed on one engine; a failure names the seed and
dumps the schedule under ``.txn-failures/`` for deterministic replay
(the CI concurrency-stress job uploads that directory as an artifact).
``REPRO_TXN_SEEDS`` widens the bank (CI runs 200 per engine); the
default 50 seeds x 3 engines stay in tier-1.
"""

from __future__ import annotations

import os

import pytest

from txnharness import generate_schedule, run_schedule

ENGINES = ("row", "vectorized", "sqlite")
SEED_COUNT = int(os.environ.get("REPRO_TXN_SEEDS", "50"))
# Seeds beyond the tier-1 bank ride the exhaustive marker (the CI
# concurrency-stress job re-includes them).
TIER1_SEEDS = 50


def _params():
    for seed in range(SEED_COUNT):
        marks = [pytest.mark.exhaustive] if seed >= TIER1_SEEDS else []
        yield pytest.param(seed, marks=marks, id=f"seed{seed}")


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", _params())
def test_schedule_snapshot_consistency(seed: int, engine: str):
    counters = run_schedule(generate_schedule(seed), engine=engine)
    # Every schedule must actually exercise the machinery: generated
    # transactions always contain at least one read or commit.
    assert counters["reads"] + counters["commits"] + counters["rollbacks"] > 0


def test_seed_bank_exercises_conflicts_and_reads():
    """Across the tier-1 bank the generator must produce real coverage:
    conflicts, rollbacks, savepoint rewinds and plenty of checked reads
    (guards against the generator drifting into triviality)."""
    totals = {"reads": 0, "commits": 0, "conflicts": 0, "rollbacks": 0}
    for seed in range(12):
        for key, value in run_schedule(generate_schedule(seed), engine="row").items():
            totals[key] = totals.get(key, 0) + value
    assert totals["reads"] >= 20
    assert totals["commits"] >= 10
    assert totals["conflicts"] >= 1
    assert totals["rollbacks"] >= 1


def test_schedules_are_deterministic():
    first = generate_schedule(7)
    second = generate_schedule(7)
    assert first.describe() == second.describe()
    assert [s.sql for s in first.steps] == [s.sql for s in second.steps]
