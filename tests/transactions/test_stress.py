"""True multi-threaded concurrency: the classic bank-transfer invariant.

Worker threads move money between accounts in explicit transactions,
retrying serialization losers; reader threads repeatedly open snapshots
and check that the total balance is conserved *inside every snapshot*
(under snapshot isolation no reader may ever observe a half-applied
transfer, regardless of thread interleaving). The assertions hold for
any schedule, so the test is thread-timing-robust while still
exercising genuinely concurrent begins/commits.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro import Database, SerializationError, connect

ENGINES = ("row", "vectorized", "sqlite")

ACCOUNTS = 6
INITIAL = 100
TOTAL = ACCOUNTS * INITIAL
TRANSFERS_PER_WORKER = 12
MAX_RETRIES = 200


def _build_bank() -> Database:
    db = Database()
    setup = connect(database=db)
    setup.run("CREATE TABLE accounts (id int, bal int)")
    setup.load_rows("accounts", [(i, INITIAL) for i in range(ACCOUNTS)])
    setup.close()
    return db


def _transfer_worker(db: Database, engine: str, seed: int, errors: list):
    try:
        rng = random.Random(seed)
        conn = connect(database=db, engine=engine)
        for _ in range(TRANSFERS_PER_WORKER):
            src, dst = rng.sample(range(ACCOUNTS), 2)
            amount = rng.randrange(1, 20)
            for attempt in range(MAX_RETRIES):
                conn.execute("BEGIN")
                try:
                    conn.execute(
                        "UPDATE accounts SET bal = bal - ? WHERE id = ?", (amount, src)
                    )
                    conn.execute(
                        "UPDATE accounts SET bal = bal + ? WHERE id = ?", (amount, dst)
                    )
                    conn.commit()
                    break
                except SerializationError:
                    continue  # the commit already rolled back; retry afresh
                except BaseException:
                    conn.rollback()
                    raise
            else:
                raise AssertionError("transfer starved: too many conflicts")
        conn.close()
    except BaseException as exc:  # noqa: BLE001 - reported by the main thread
        errors.append(exc)


def _snapshot_reader(db: Database, engine: str, rounds: int, errors: list):
    try:
        conn = connect(database=db, engine=engine)
        for _ in range(rounds):
            conn.execute("BEGIN")
            first = conn.execute("SELECT sum(bal), count(*) FROM accounts").fetchall()
            # Re-read through a different query shape: same snapshot, so
            # the totals must agree even while writers commit.
            per_account = conn.execute(
                "SELECT id, bal FROM accounts ORDER BY id"
            ).fetchall()
            second = conn.execute("SELECT sum(bal), count(*) FROM accounts").fetchall()
            conn.commit()
            assert first == second, "snapshot drifted within a transaction"
            assert first == [(TOTAL, ACCOUNTS)], f"half-applied transfer seen: {first}"
            assert sum(bal for _, bal in per_account) == TOTAL
        conn.close()
    except BaseException as exc:  # noqa: BLE001
        errors.append(exc)


@pytest.mark.parametrize("engine", ENGINES)
def test_bank_invariant_under_concurrent_transfers(engine):
    db = _build_bank()
    errors: list = []
    threads = [
        threading.Thread(target=_transfer_worker, args=(db, engine, seed, errors))
        for seed in range(3)
    ] + [
        threading.Thread(target=_snapshot_reader, args=(db, engine, 10, errors))
        for _ in range(2)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive(), "stress thread hung"
    assert not errors, f"worker/reader failures: {errors!r}"

    check = connect(database=db)
    assert check.execute("SELECT sum(bal) FROM accounts").fetchall() == [(TOTAL,)]


def test_bank_invariant_mixed_engines():
    """Writers and readers on different engines against one database:
    the snapshot contract is engine-independent."""
    db = _build_bank()
    errors: list = []
    threads = [
        threading.Thread(
            target=_transfer_worker, args=(db, engine, 10 + i, errors)
        )
        for i, engine in enumerate(ENGINES)
    ] + [
        threading.Thread(target=_snapshot_reader, args=(db, engine, 8, errors))
        for engine in ENGINES
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive(), "stress thread hung"
    assert not errors, f"worker/reader failures: {errors!r}"

    check = connect(database=db)
    assert check.execute("SELECT sum(bal) FROM accounts").fetchall() == [(TOTAL,)]


def test_concurrent_provenance_queries_under_update_load():
    """The paper's scenario: provenance computed while the database
    changes underneath. Readers run PROVENANCE queries in snapshots and
    check internal consistency (every witness row matches the snapshot's
    visible data)."""
    db = _build_bank()
    errors: list = []

    def provenance_reader():
        try:
            conn = connect(database=db)
            for _ in range(10):
                conn.execute("BEGIN")
                base = dict(
                    conn.execute("SELECT id, bal FROM accounts").fetchall()
                )
                prov = conn.execute(
                    "SELECT PROVENANCE id, bal FROM accounts WHERE bal >= 0"
                ).fetchall()
                conn.commit()
                for row in prov:
                    ident, bal, prov_id, prov_bal = row
                    assert base[prov_id] == prov_bal, "witness from another snapshot"
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [
        threading.Thread(target=_transfer_worker, args=(db, "row", 99, errors)),
        threading.Thread(target=provenance_reader),
        threading.Thread(target=provenance_reader),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive()
    assert not errors, f"failures: {errors!r}"
