"""Seeded concurrent schedules with materialized-view readers.

Same harness, same serial-order oracle, one twist: the database carries
four materialized views (delta-safe filter/join, a provenance-carrying
one, a non-delta-safe aggregate) and readers query through them while
writers churn the base tables. The oracle models each matview as its
unfolded defining query over the transaction's snapshot plus its own
writes — exactly the engine's freshness contract — so any reader served
stale-but-"fresh" matview rows, or any maintenance delta that drifts
from the recomputed contents, fails the schedule with a replayable seed.
"""

from __future__ import annotations

import os

import pytest

from txnharness import generate_schedule, run_schedule

ENGINES = ("row", "vectorized", "sqlite")
SEED_COUNT = int(os.environ.get("REPRO_TXN_SEEDS", "50"))
TIER1_SEEDS = 25  # half the plain bank: maintenance makes each run pricier


def _params():
    for seed in range(min(SEED_COUNT, TIER1_SEEDS * 4)):
        marks = [pytest.mark.exhaustive] if seed >= TIER1_SEEDS else []
        yield pytest.param(seed, marks=marks, id=f"seed{seed}")


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", _params())
def test_matview_schedule_snapshot_consistency(seed: int, engine: str):
    counters = run_schedule(generate_schedule(seed, matviews=True), engine=engine)
    assert counters["reads"] + counters["commits"] + counters["rollbacks"] > 0


def test_matview_seed_bank_reads_through_views():
    """The widened read pool must actually route traffic through the
    matviews, and the bank must still provoke real write-write
    conflicts underneath them."""
    totals = {
        "reads": 0,
        "commits": 0,
        "conflicts": 0,
        "rollbacks": 0,
        "matview_reads": 0,
    }
    for seed in range(12):
        counters = run_schedule(
            generate_schedule(seed, matviews=True), engine="row"
        )
        for key, value in counters.items():
            totals[key] += value
    assert totals["matview_reads"] >= 10
    assert totals["conflicts"] >= 1
    assert totals["commits"] >= 10


def test_matview_schedules_are_deterministic():
    first = generate_schedule(11, matviews=True)
    second = generate_schedule(11, matviews=True)
    assert first.describe() == second.describe()
    # The flag changes the read pool, so flagged and plain schedules
    # draw different step sequences from the same seed — but plain
    # schedules must be byte-stable against the pre-matview generator
    # (their seed bank is pinned by test_schedules.py).
    assert first.matviews and not generate_schedule(11).matviews
