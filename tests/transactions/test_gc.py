"""Version garbage collection: superseded committed states are freed
once no live snapshot can see them — and never before."""

from __future__ import annotations

import gc as pygc

from repro import Database, connect


def _bank(rows: int = 4) -> tuple[Database, "object"]:
    db = Database()
    setup = connect(database=db)
    setup.run("CREATE TABLE t (a int, b int)")
    setup.load_rows("t", [(i, i * 10) for i in range(rows)])
    return db, setup


class TestHorizon:
    def test_horizon_advances_as_transactions_retire(self):
        db, setup = _bank()
        old = connect(database=db)
        old.execute("BEGIN")
        old.execute("SELECT a FROM t").fetchall()  # materialize the snapshot
        before = db.manager.horizon()

        writer = connect(database=db)
        writer.execute("UPDATE t SET b = 999 WHERE a = 0")
        # The open snapshot pins the horizon at its begin sequence.
        assert db.manager.horizon() == before
        old.commit()
        assert db.manager.horizon() > before

    def test_no_live_snapshots_means_everything_is_collectable(self):
        db, setup = _bank()
        for i in range(5):
            setup.execute("BEGIN")
            setup.execute(f"UPDATE t SET b = {i} WHERE a = 1")
            setup.commit()
        stats = db.manager.gc_stats()
        assert stats["versions_retained"] == 0
        assert stats["versions_freed"] >= 5


class TestFreeing:
    def test_superseded_versions_freed_after_snapshot_closes(self):
        db, setup = _bank()
        reader = connect(database=db)
        reader.execute("BEGIN")
        reader.execute("SELECT a FROM t").fetchall()

        writer = connect(database=db)
        for i in range(3):
            writer.execute("BEGIN")
            writer.execute(f"UPDATE t SET b = {i} WHERE a = 2")
            writer.commit()
        retained = db.manager.gc_stats()["versions_retained"]
        assert retained >= 3, "open snapshot must pin superseded versions"

        freed_before = db.manager.gc_stats()["versions_freed"]
        reader.rollback()  # retiring the snapshot triggers collection
        stats = db.manager.gc_stats()
        assert stats["versions_retained"] == 0
        assert stats["versions_freed"] >= freed_before + retained
        assert stats["rows_freed"] > 0

    def test_superseded_row_lists_are_actually_reclaimed(self):
        # The history entry is the only thing keeping a superseded
        # committed row list alive: once GC trims it, the list is
        # garbage. Verified with a weakref-style canary via gc.
        import weakref

        class Canary:
            pass

        db, setup = _bank()
        table = setup.catalog.table("t").table
        reader = connect(database=db)
        reader.execute("BEGIN")
        reader.execute("SELECT a FROM t").fetchall()

        setup.execute("UPDATE t SET b = -1 WHERE a = 0")
        assert table._history, "superseded state must be retained"
        superseded_rows = table._history[0].superseded[0]
        canary = Canary()
        superseded_rows.append(canary)  # piggyback on the dead list
        ref = weakref.ref(canary)
        del superseded_rows, canary

        reader.commit()
        assert not table._history
        pygc.collect()
        assert ref() is None, "superseded committed state leaked"

    def test_gc_runs_counter_increments(self):
        db, setup = _bank()
        runs = db.manager.gc_stats()["gc_runs"]
        setup.execute("BEGIN")
        setup.execute("INSERT INTO t VALUES (99, 0)")
        setup.commit()
        assert db.manager.gc_stats()["gc_runs"] > runs


class TestLiveSnapshotsNeverLoseData:
    def test_pinned_snapshot_reads_identically_through_churn(self):
        db, setup = _bank(rows=6)
        reader = connect(database=db)
        reader.execute("BEGIN")
        baseline = reader.execute("SELECT a, b FROM t").fetchall()

        writer = connect(database=db)
        for i in range(10):
            writer.execute("BEGIN")
            writer.execute(f"UPDATE t SET b = {i} WHERE a = {i % 6}")
            writer.commit()
        # GC ran at every retire above, but the reader's snapshot must
        # be bit-identical to its baseline.
        assert reader.execute("SELECT a, b FROM t").fetchall() == baseline
        reader.commit()
        assert reader.execute("SELECT a, b FROM t").fetchall() != baseline

    def test_oldest_of_several_snapshots_pins_the_horizon(self):
        db, setup = _bank()
        oldest = connect(database=db)
        oldest.execute("BEGIN")
        old_rows = oldest.execute("SELECT a, b FROM t").fetchall()

        setup.execute("UPDATE t SET b = 1000 WHERE a = 1")

        newer = connect(database=db)
        newer.execute("BEGIN")
        new_rows = newer.execute("SELECT a, b FROM t").fetchall()
        assert new_rows != old_rows

        setup.execute("UPDATE t SET b = 2000 WHERE a = 1")

        # Retiring the newer snapshot must not free anything the oldest
        # one still needs.
        newer.rollback()
        assert oldest.execute("SELECT a, b FROM t").fetchall() == old_rows
        oldest.rollback()
        assert db.manager.gc_stats()["versions_retained"] == 0
