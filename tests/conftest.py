"""Shared fixtures: the paper's forum database and the TPC-H-like
benchmark database."""

from __future__ import annotations

import pytest

from repro import PermDB
from repro.engine.session import legacy_session
from repro.workloads.forum import create_forum_db
from repro.workloads.tpch import TpchConfig, create_tpch_db


@pytest.fixture
def db() -> PermDB:
    """An empty legacy-style session (Relation-returning execute)."""
    return legacy_session()


@pytest.fixture
def forum_db() -> PermDB:
    """The paper's Figure 1 database (fresh per test — tests mutate it)."""
    return create_forum_db()


@pytest.fixture(scope="session")
def tpch_db() -> PermDB:
    """A small TPC-H-like database, shared read-only across tests."""
    return create_tpch_db(TpchConfig(customers=30, orders=120, parts=20))


def rows_set(relation):
    """Order-insensitive row comparison helper."""
    return sorted(relation.rows, key=repr)
