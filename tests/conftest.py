"""Shared fixtures: the paper's forum database and the TPC-H-like
benchmark database."""

from __future__ import annotations

import pytest

import repro
from repro import Connection
from repro.workloads.forum import create_forum_db
from repro.workloads.tpch import TpchConfig, create_tpch_db


@pytest.fixture
def db() -> Connection:
    """An empty session (engine-level Relation-returning run())."""
    return repro.connect()


@pytest.fixture
def forum_db() -> Connection:
    """The paper's Figure 1 database (fresh per test — tests mutate it)."""
    return create_forum_db()


@pytest.fixture(scope="session")
def tpch_db() -> Connection:
    """A small TPC-H-like database, shared read-only across tests."""
    return create_tpch_db(TpchConfig(customers=30, orders=120, parts=20))


def rows_set(relation):
    """Order-insensitive row comparison helper."""
    return sorted(relation.rows, key=repr)
