"""Workload generator tests: forum (Figure 1), scaled forum, TPC-H-like."""

from __future__ import annotations

import pytest

from repro.workloads import QUERY_CLASSES, TpchConfig, create_forum_db, create_tpch_db
from repro.workloads.forum import scaled_forum_db
from repro.workloads.queries import queries_for_class, with_provenance


class TestForum:
    def test_figure1_cardinalities(self):
        db = create_forum_db()
        assert len(db.run("SELECT * FROM messages")) == 2
        assert len(db.run("SELECT * FROM users")) == 3
        assert len(db.run("SELECT * FROM imports")) == 2
        assert len(db.run("SELECT * FROM approved")) == 4
        assert len(db.run("SELECT * FROM v1")) == 4

    def test_scaled_forum_is_deterministic(self):
        a = scaled_forum_db(messages=50, users=10, imports=20)
        b = scaled_forum_db(messages=50, users=10, imports=20)
        for table in ("messages", "users", "imports", "approved"):
            assert (
                a.run(f"SELECT * FROM {table}").rows
                == b.run(f"SELECT * FROM {table}").rows
            )

    def test_scaled_forum_sizes(self):
        db = scaled_forum_db(messages=50, users=10, imports=20, approvals_per_message=2)
        assert len(db.run("SELECT * FROM messages")) == 50
        assert len(db.run("SELECT * FROM imports")) == 20
        assert len(db.run("SELECT * FROM approved")) == 100

    def test_scaled_ids_disjoint(self):
        db = scaled_forum_db(messages=20, users=5, imports=20)
        overlap = db.run(
            "SELECT mId FROM messages INTERSECT SELECT mId FROM imports"
        )
        assert overlap.rows == []


class TestTpch:
    @pytest.fixture(scope="class")
    def tpch(self):
        return create_tpch_db(TpchConfig(customers=20, orders=60, parts=10))

    def test_row_counts(self, tpch):
        assert len(tpch.run("SELECT * FROM customer")) == 20
        assert len(tpch.run("SELECT * FROM orders")) == 60
        assert len(tpch.run("SELECT * FROM lineitem")) == 180
        assert len(tpch.run("SELECT * FROM region")) == 5

    def test_referential_integrity(self, tpch):
        dangling = tpch.run(
            "SELECT o_orderkey FROM orders WHERE o_custkey NOT IN "
            "(SELECT c_custkey FROM customer)"
        )
        assert dangling.rows == []
        dangling = tpch.run(
            "SELECT l_orderkey FROM lineitem WHERE l_orderkey NOT IN "
            "(SELECT o_orderkey FROM orders)"
        )
        assert dangling.rows == []

    def test_deterministic_for_seed(self):
        a = create_tpch_db(TpchConfig(customers=5, orders=10, parts=5, seed=1))
        b = create_tpch_db(TpchConfig(customers=5, orders=10, parts=5, seed=1))
        assert a.run("SELECT * FROM orders").rows == b.run("SELECT * FROM orders").rows

    def test_scale_factor(self):
        config = TpchConfig(customers=100, orders=200).scale(0.1)
        assert config.customers == 10 and config.orders == 20

    def test_every_benchmark_query_runs(self, tpch):
        for class_name in QUERY_CLASSES:
            for name, sql in queries_for_class(class_name).items():
                plain = tpch.run(sql)
                prov = tpch.run(with_provenance(sql))
                width = len(plain.columns)
                assert {tuple(r[:width]) for r in prov.rows} == set(plain.rows), name

    def test_with_provenance_contribution(self):
        sql = with_provenance("SELECT a FROM t", contribution="copy partial")
        assert sql.startswith("SELECT PROVENANCE ON CONTRIBUTION (COPY PARTIAL)")
