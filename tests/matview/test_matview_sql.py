"""SQL surface of materialized views: lexer/parser/printer round-trips."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.parser import parse_sql
from repro.sql.printer import format_statement


def _parse_one(sql: str) -> ast.Statement:
    statements = parse_sql(sql)
    assert len(statements) == 1
    return statements[0]


@pytest.mark.parametrize(
    "sql",
    (
        "CREATE MATERIALIZED VIEW mv AS SELECT a, b FROM t WHERE a > 1",
        "CREATE MATERIALIZED VIEW mv WITH PROVENANCE AS SELECT a FROM t",
        "CREATE MATERIALIZED VIEW mv AS "
        "SELECT x.a, y.b FROM t x JOIN u y ON y.a = x.a",
        "CREATE MATERIALIZED VIEW mv AS "
        "SELECT a, count(*) AS n FROM t GROUP BY a",
        "REFRESH MATERIALIZED VIEW mv",
        "DROP MATERIALIZED VIEW mv",
        "DROP MATERIALIZED VIEW IF EXISTS mv",
    ),
)
def test_round_trip_is_stable(sql):
    statement = _parse_one(sql)
    printed = format_statement(statement)
    assert format_statement(_parse_one(printed)) == printed


def test_create_parses_to_typed_node():
    statement = _parse_one(
        "CREATE MATERIALIZED VIEW mv WITH PROVENANCE AS SELECT a FROM t"
    )
    assert isinstance(statement, ast.CreateMaterializedView)
    assert statement.name == "mv"
    assert statement.with_provenance
    assert isinstance(statement.query, ast.Select)


def test_refresh_and_drop_parse_to_typed_nodes():
    refresh = _parse_one("REFRESH MATERIALIZED VIEW mv")
    assert isinstance(refresh, ast.RefreshMaterializedView)
    assert refresh.name == "mv"
    drop = _parse_one("DROP MATERIALIZED VIEW IF EXISTS mv")
    assert isinstance(drop, ast.DropRelation)
    assert drop.kind == "materialized view"
    assert drop.if_exists


def test_or_replace_materialized_view_is_rejected():
    with pytest.raises(ParseError, match="DROP MATERIALIZED VIEW first"):
        _parse_one("CREATE OR REPLACE MATERIALIZED VIEW mv AS SELECT a FROM t")


@pytest.mark.parametrize(
    "sql",
    (
        "CREATE MATERIALIZED VIEW mv",
        "REFRESH MATERIALIZED mv",
        "CREATE MATERIALIZED TABLE mv AS SELECT 1",
    ),
)
def test_malformed_statements_raise_parse_errors(sql):
    with pytest.raises(ParseError):
        parse_sql(sql)
