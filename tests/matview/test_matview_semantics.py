"""Materialized-view engine semantics: creation, maintenance, refresh,
staleness, refusals and stats, on an in-memory database."""

from __future__ import annotations

import pytest

import repro
from repro.errors import (
    CatalogError,
    OperationalError,
    ProgrammingError,
)


@pytest.fixture
def db():
    connection = repro.connect()
    connection.run("CREATE TABLE item (id int, cat text, qty int)")
    connection.run("CREATE TABLE tag (item int, label text)")
    connection.load_rows(
        "item", [(1, "a", 3), (2, "b", 1), (3, "a", 5), (4, None, 2)]
    )
    connection.load_rows("tag", [(1, "x"), (3, "x"), (3, "y"), (5, "z")])
    yield connection
    connection.close()


# ---------------------------------------------------------------------------
# Creation and reads
# ---------------------------------------------------------------------------


def test_create_reports_row_count_and_serves_stored_rows(db):
    status = db.run(
        "CREATE MATERIALIZED VIEW big AS SELECT id, qty FROM item WHERE qty >= 2"
    )
    assert "3 rows" in status.rows[0][0]
    assert db.run("SELECT * FROM big").rows == [(1, 3), (3, 5), (4, 2)]
    # Fresh matviews are served from the heap: no unfold, no refresh.
    assert db.pipeline.counters.matview_auto_refreshes == 0


def test_delta_safe_matview_tracks_dml_incrementally(db):
    db.run(
        "CREATE MATERIALIZED VIEW joined AS SELECT i.id, t.label "
        "FROM item i JOIN tag t ON t.item = i.id WHERE i.qty > 1"
    )
    before = db.database.matview_maintainer.incremental_commits
    db.run("INSERT INTO item VALUES (5, 'c', 9)")
    db.run("INSERT INTO tag VALUES (5, 'w')")
    db.run("DELETE FROM tag WHERE label = 'y'")
    db.run("UPDATE item SET qty = 0 WHERE id = 1")
    expected = db.run(
        "SELECT i.id, t.label FROM item i JOIN tag t ON t.item = i.id "
        "WHERE i.qty > 1"
    ).rows
    assert db.run("SELECT * FROM joined").rows == expected
    assert db.database.matview_maintainer.incremental_commits > before
    # Incremental maintenance means the reads above never recomputed.
    assert db.pipeline.counters.matview_refreshes == 0
    stats = db.database.matview_stats()
    assert stats["views"]["joined"]["stale"] is False
    assert stats["views"]["joined"]["delta_safe"] is True


def test_aggregate_matview_goes_stale_and_auto_refreshes(db):
    db.run(
        "CREATE MATERIALIZED VIEW totals AS "
        "SELECT cat, sum(qty) AS total FROM item GROUP BY cat"
    )
    db.run("INSERT INTO item VALUES (9, 'a', 10)")
    assert db.database.matview_stats()["views"]["totals"]["stale"] is True
    expected = db.run("SELECT cat, sum(qty) AS total FROM item GROUP BY cat").rows
    assert db.run("SELECT * FROM totals").rows == expected
    assert db.pipeline.counters.matview_auto_refreshes >= 1
    assert db.database.matview_stats()["views"]["totals"]["stale"] is False


def test_provenance_matview_matches_live_rewrite(db):
    db.run(
        "CREATE MATERIALIZED VIEW pv WITH PROVENANCE AS "
        "SELECT id, qty FROM item WHERE qty >= 2"
    )
    through = db.run("SELECT * FROM pv")
    direct = db.run("SELECT PROVENANCE id, qty FROM item WHERE qty >= 2")
    assert through.rows == direct.rows
    assert list(through.columns) == list(direct.columns)
    db.run("INSERT INTO item VALUES (6, 'd', 7)")
    assert (
        db.run("SELECT * FROM pv").rows
        == db.run("SELECT PROVENANCE id, qty FROM item WHERE qty >= 2").rows
    )


def test_reads_inside_transaction_see_own_writes_through_matview(db):
    db.run("CREATE MATERIALIZED VIEW big AS SELECT id, qty FROM item WHERE qty >= 2")
    db.run("BEGIN")
    db.run("INSERT INTO item VALUES (7, 'e', 8)")
    assert (7, 8) in db.run("SELECT * FROM big").rows
    db.run("ROLLBACK")
    assert (7, 8) not in db.run("SELECT * FROM big").rows


def test_refresh_recomputes_and_reports_count(db):
    db.run("CREATE MATERIALIZED VIEW big AS SELECT id, qty FROM item WHERE qty >= 2")
    status = db.run("REFRESH MATERIALIZED VIEW big")
    assert "3 rows" in status.rows[0][0]
    assert db.pipeline.counters.matview_refreshes == 1


def test_matview_over_view_unfolds_transitively(db):
    db.run("CREATE VIEW busy AS SELECT id, qty FROM item WHERE qty > 1")
    db.run("CREATE MATERIALIZED VIEW mv AS SELECT id FROM busy WHERE qty < 5")
    assert db.run("SELECT * FROM mv").rows == [(1,), (4,)]
    db.run("INSERT INTO item VALUES (8, 'f', 2)")
    assert db.run("SELECT * FROM mv").rows == [(1,), (4,), (8,)]


# ---------------------------------------------------------------------------
# Refusals
# ---------------------------------------------------------------------------


def test_matview_ddl_is_refused_inside_transactions(db):
    """Satellite regression: CREATE/DROP/REFRESH MATERIALIZED VIEW use
    the same non-transactional-DDL refusal as every other DDL."""
    db.run("CREATE MATERIALIZED VIEW big AS SELECT id FROM item WHERE qty >= 2")
    db.run("BEGIN")
    for sql in (
        "CREATE MATERIALIZED VIEW other AS SELECT id FROM item",
        "REFRESH MATERIALIZED VIEW big",
        "DROP MATERIALIZED VIEW big",
    ):
        with pytest.raises(
            OperationalError,
            match="DDL is not transactional; commit or rollback first",
        ):
            db.run(sql)
    db.run("ROLLBACK")
    # Outside the transaction the same statements are fine.
    db.run("REFRESH MATERIALIZED VIEW big")
    db.run("DROP MATERIALIZED VIEW big")


def test_dml_against_matview_is_refused(db):
    db.run("CREATE MATERIALIZED VIEW big AS SELECT id, qty FROM item WHERE qty >= 2")
    for sql, verb in (
        ("INSERT INTO big VALUES (9, 9)", "INSERT into"),
        ("DELETE FROM big WHERE id = 1", "DELETE from"),
        ("UPDATE big SET qty = 0", "UPDATE"),
    ):
        with pytest.raises(ProgrammingError, match="maintained from the base"):
            db.run(sql)


def test_drop_kind_mismatches_are_refused(db):
    db.run("CREATE MATERIALIZED VIEW big AS SELECT id FROM item")
    db.run("CREATE VIEW little AS SELECT id FROM item")
    with pytest.raises(ProgrammingError, match="use DROP MATERIALIZED VIEW"):
        db.run("DROP TABLE big")
    with pytest.raises(ProgrammingError, match="use DROP MATERIALIZED VIEW"):
        db.run("DROP VIEW big")
    with pytest.raises(ProgrammingError, match="use DROP VIEW"):
        db.run("DROP MATERIALIZED VIEW little")


def test_dropping_base_table_with_dependents_is_refused(db):
    db.run("CREATE MATERIALIZED VIEW big AS SELECT id FROM item WHERE qty >= 2")
    with pytest.raises(OperationalError, match="big depend on it"):
        db.run("DROP TABLE item")
    db.run("DROP MATERIALIZED VIEW big")
    db.run("DROP TABLE item")


def test_create_refuses_duplicates_parameters_and_setop_provenance(db):
    db.run("CREATE MATERIALIZED VIEW big AS SELECT id FROM item")
    with pytest.raises(CatalogError, match="already exists"):
        db.run("CREATE MATERIALIZED VIEW big AS SELECT id FROM item")
    with pytest.raises(ProgrammingError, match="parameter placeholders"):
        db.run(
            "CREATE MATERIALIZED VIEW p AS SELECT id FROM item WHERE qty > ?",
            [2],
        )
    with pytest.raises(ProgrammingError, match="requires a SELECT"):
        db.run(
            "CREATE MATERIALIZED VIEW s WITH PROVENANCE AS "
            "SELECT id FROM item UNION ALL SELECT item FROM tag"
        )
    # Duplicate output names are uniquified by the analyzer exactly as
    # for plain query results, so the stored schema stays unambiguous.
    db.run("CREATE MATERIALIZED VIEW d AS SELECT id, id FROM item")
    assert list(db.run("SELECT * FROM d").columns) == ["id", "id_1"]


def test_refresh_refuses_schema_drift(db):
    db.run("CREATE VIEW busy AS SELECT id, qty FROM item WHERE qty > 1")
    db.run("CREATE MATERIALIZED VIEW mv AS SELECT * FROM busy")
    db.run("CREATE OR REPLACE VIEW busy AS SELECT id, cat, qty FROM item")
    with pytest.raises(OperationalError, match="drop and re-create"):
        db.run("REFRESH MATERIALIZED VIEW mv")


# ---------------------------------------------------------------------------
# Stats
# ---------------------------------------------------------------------------


def test_matview_stats_shape(db):
    db.run("CREATE MATERIALIZED VIEW big AS SELECT id, qty FROM item WHERE qty >= 2")
    db.run(
        "CREATE MATERIALIZED VIEW totals AS "
        "SELECT cat, sum(qty) AS t FROM item GROUP BY cat"
    )
    db.run("INSERT INTO item VALUES (10, 'g', 4)")
    stats = db.database.matview_stats()
    assert set(stats["views"]) == {"big", "totals"}
    big = stats["views"]["big"]
    assert big["rows"] == 4 and big["delta_safe"] and not big["stale"]
    totals = stats["views"]["totals"]
    assert totals["stale"] and not totals["delta_safe"]
    assert stats["incremental_commits"] >= 1
    assert stats["stale_marks"] >= 1
    assert stats["rows_added"] >= 1
