"""Seeded incremental-maintenance fuzzer.

Random DML — autocommit statements and multi-statement transactions
(committed or rolled back) — runs against base tables carrying a
delta-safe filter matview, a delta-safe join matview and a
provenance-carrying one. After every commit boundary each matview must
be bit-identical (rows and order) to its unfolded defining query: the
telescoped join deltas, removal intersections and provenance join-backs
can never drift from recomputation, no matter the interleaving.
"""

from __future__ import annotations

import random

import pytest

import repro

MATVIEWS = {
    "mv_busy": "SELECT id, grp, qty FROM item WHERE qty >= 3",
    "mv_join": (
        "SELECT i.id, i.grp, t.label FROM item i "
        "JOIN tag t ON t.item = i.id WHERE i.qty > 0"
    ),
    "mv_prov": "SELECT PROVENANCE id, qty FROM item WHERE qty < 8",
}
_CREATE = {
    "mv_busy": "CREATE MATERIALIZED VIEW mv_busy AS "
    "SELECT id, grp, qty FROM item WHERE qty >= 3",
    "mv_join": "CREATE MATERIALIZED VIEW mv_join AS "
    "SELECT i.id, i.grp, t.label FROM item i "
    "JOIN tag t ON t.item = i.id WHERE i.qty > 0",
    "mv_prov": "CREATE MATERIALIZED VIEW mv_prov WITH PROVENANCE AS "
    "SELECT id, qty FROM item WHERE qty < 8",
}


def _random_dml(rng: random.Random, next_id: list[int]) -> str:
    groups = ["a", "b", "c"]
    labels = ["x", "y", "z"]
    roll = rng.randrange(6)
    if roll == 0:
        next_id[0] += 1
        return (
            f"INSERT INTO item VALUES "
            f"({next_id[0]}, '{rng.choice(groups)}', {rng.randrange(0, 10)})"
        )
    if roll == 1:
        return (
            f"INSERT INTO tag VALUES "
            f"({rng.randrange(1, next_id[0] + 2)}, '{rng.choice(labels)}')"
        )
    if roll == 2:
        return (
            f"UPDATE item SET qty = qty + {rng.randrange(1, 4)} "
            f"WHERE grp = '{rng.choice(groups)}'"
        )
    if roll == 3:
        return f"UPDATE item SET qty = {rng.randrange(0, 10)} WHERE id = {rng.randrange(1, next_id[0] + 1)}"
    if roll == 4:
        return f"DELETE FROM tag WHERE label = '{rng.choice(labels)}' AND item > {rng.randrange(0, next_id[0] + 1)}"
    return f"DELETE FROM item WHERE qty = {rng.randrange(0, 10)}"


def _assert_matviews_match(db, context: str) -> None:
    for name, unfolded in MATVIEWS.items():
        through = db.run(f"SELECT * FROM {name}").rows
        direct = db.run(unfolded).rows
        assert through == direct, (
            f"{context}: {name} diverged\n  stored:     {through}\n"
            f"  recomputed: {direct}"
        )


@pytest.mark.parametrize("seed", range(12))
def test_matviews_track_random_dml(seed: int):
    rng = random.Random(seed)
    db = repro.connect()
    db.run("CREATE TABLE item (id int, grp text, qty int)")
    db.run("CREATE TABLE tag (item int, label text)")
    next_id = [6]
    db.load_rows(
        "item",
        [(i, rng.choice("abc"), rng.randrange(0, 10)) for i in range(1, 7)],
    )
    db.load_rows(
        "tag",
        [(rng.randrange(1, 7), rng.choice("xyz")) for _ in range(5)],
    )
    for sql in _CREATE.values():
        db.run(sql)
    _assert_matviews_match(db, f"seed {seed} after create")

    for step in range(30):
        if rng.random() < 0.25:
            # A multi-statement transaction: its whole delta lands as
            # one maintenance unit at COMMIT (or not at all).
            db.run("BEGIN")
            for _ in range(rng.randrange(1, 4)):
                db.run(_random_dml(rng, next_id))
            if rng.random() < 0.8:
                db.run("COMMIT")
            else:
                db.run("ROLLBACK")
        else:
            db.run(_random_dml(rng, next_id))
        _assert_matviews_match(db, f"seed {seed} step {step}")

    # The whole run must have been maintained, never recomputed.
    assert db.pipeline.counters.matview_refreshes == 0
    assert db.pipeline.counters.matview_auto_refreshes == 0
    assert db.database.matview_maintainer.incremental_commits > 0
    db.close()
