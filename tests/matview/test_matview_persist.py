"""Durability of materialized views: WAL replay and checkpoint paths.

A restart must recover each matview's stored rows (in order), its
freshness bookkeeping (so a fresh view is served without a recompute),
and its staleness (so a stale view still recomputes on first read) —
whether the state comes from pure WAL replay or from a checkpointed
heap plus the log tail.
"""

from __future__ import annotations

import pytest

from repro.engine.database import Database

_SETUP = (
    "CREATE TABLE item (id int, grp text, qty int)",
    "INSERT INTO item VALUES (1, 'a', 3), (2, 'b', 1), (3, 'a', 5), (4, 'c', 2)",
    "CREATE MATERIALIZED VIEW busy AS SELECT id, qty FROM item WHERE qty >= 2",
    "CREATE MATERIALIZED VIEW pv WITH PROVENANCE AS "
    "SELECT id, grp FROM item WHERE qty > 1",
    "CREATE MATERIALIZED VIEW tot AS "
    "SELECT grp, sum(qty) AS total FROM item GROUP BY grp",
)


def _unfolded(conn, name):
    defs = {
        "busy": "SELECT id, qty FROM item WHERE qty >= 2",
        "pv": "SELECT PROVENANCE id, grp FROM item WHERE qty > 1",
        "tot": "SELECT grp, sum(qty) AS total FROM item GROUP BY grp",
    }
    return conn.run(defs[name]).rows


@pytest.mark.parametrize("checkpoint", (False, True), ids=("wal", "checkpoint"))
def test_matviews_survive_restart(tmp_path, checkpoint):
    d = str(tmp_path / "db")
    with Database(path=d) as db:
        conn = db.connect()
        for sql in _SETUP:
            conn.run(sql)
        conn.run("INSERT INTO item VALUES (5, 'b', 7)")  # incremental delta
        expected = {
            name: conn.run(f"SELECT * FROM {name}").rows
            for name in ("busy", "pv")
        }
        if checkpoint:
            conn.run("CHECKPOINT")
    with Database(path=d) as db:
        conn = db.connect()
        stats = db.matview_stats()["views"]
        # The delta-maintained views recovered fresh; the aggregate was
        # left stale by the last insert and recovered stale.
        assert not stats["busy"]["stale"] and not stats["pv"]["stale"]
        assert stats["tot"]["stale"]
        for name, rows in expected.items():
            assert conn.run(f"SELECT * FROM {name}").rows == rows
        # Fresh views were served from the recovered heaps, no refresh.
        assert conn.pipeline.counters.matview_auto_refreshes == 0
        # The stale aggregate recomputes on first read.
        assert conn.run("SELECT * FROM tot").rows == _unfolded(conn, "tot")
        assert conn.pipeline.counters.matview_auto_refreshes == 1


def test_incremental_maintenance_resumes_after_restart(tmp_path):
    """The maintenance program is rebuilt lazily after recovery: the
    first base write degrades the view to stale-and-recompute, one
    refresh rebuilds the program, and maintenance is incremental again."""
    d = str(tmp_path / "db")
    with Database(path=d) as db:
        conn = db.connect()
        for sql in _SETUP[:3]:
            conn.run(sql)
    with Database(path=d) as db:
        conn = db.connect()
        conn.run("INSERT INTO item VALUES (6, 'c', 9)")
        assert conn.run("SELECT * FROM busy").rows == _unfolded(conn, "busy")
        before = db.matview_maintainer.incremental_commits
        conn.run("INSERT INTO item VALUES (7, 'a', 4)")
        assert db.matview_maintainer.incremental_commits == before + 1
        assert conn.run("SELECT * FROM busy").rows == _unfolded(conn, "busy")


def test_drop_matview_survives_restart(tmp_path):
    d = str(tmp_path / "db")
    with Database(path=d) as db:
        conn = db.connect()
        for sql in _SETUP[:3]:
            conn.run(sql)
        conn.run("DROP MATERIALIZED VIEW busy")
    with Database(path=d) as db:
        assert not db.catalog.has_matview("busy")
        assert db.catalog.has_table("item")


def test_refresh_survives_restart(tmp_path):
    d = str(tmp_path / "db")
    with Database(path=d) as db:
        conn = db.connect()
        for sql in _SETUP:
            conn.run(sql)
        conn.run("INSERT INTO item VALUES (8, 'b', 6)")
        conn.run("REFRESH MATERIALIZED VIEW tot")
        expected = conn.run("SELECT * FROM tot").rows
    with Database(path=d) as db:
        conn = db.connect()
        assert not db.matview_stats()["views"]["tot"]["stale"]
        assert conn.run("SELECT * FROM tot").rows == expected
        assert conn.pipeline.counters.matview_auto_refreshes == 0
