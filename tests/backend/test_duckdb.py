"""The optional DuckDB pushdown backend.

DuckDB is an optional dependency: the backend registers itself only
when the module is importable, and this whole file skips cleanly when
it is not (the registry keeps ``engine="duckdb"`` an ordinary unknown
engine there — see test_registry.py for that degradation). Everything
below runs the same plans through ``engine="duckdb"`` and the row
engine and asserts identical results.
"""

from __future__ import annotations

import pytest

duckdb = pytest.importorskip("duckdb")

import repro
from repro.backend import engine_names

pytestmark = pytest.mark.skipif(
    "duckdb" not in engine_names(), reason="duckdb backend not registered"
)

_DDL = [
    "CREATE TABLE t (k INT, grp TEXT, x FLOAT, flag BOOL)",
    "INSERT INTO t VALUES "
    "(5, 'a', 1.5, TRUE), (2, 'b', 2.5, FALSE), (9, 'a', 0.5, TRUE), "
    "(4, 'c', 3.5, NULL), (7, 'b', 4.5, FALSE), (1, 'a', 5.5, TRUE)",
]

_QUERIES = [
    "SELECT k, grp FROM t WHERE k > 2 ORDER BY k",
    "SELECT grp, count(*), sum(k) FROM t GROUP BY grp",
    "SELECT DISTINCT grp FROM t",
    "SELECT count(*), min(k), max(k) FROM t WHERE flag",
    "SELECT PROVENANCE grp, sum(k) FROM t GROUP BY grp",
]


@pytest.fixture()
def pair():
    connections = {}
    for engine in ("row", "duckdb"):
        db = repro.connect(engine=engine)
        for statement in _DDL:
            db.run(statement)
        connections[engine] = db
    yield connections
    for db in connections.values():
        db.close()


@pytest.mark.parametrize("sql", _QUERIES)
def test_duckdb_matches_row_engine(pair, sql):
    expected = pair["row"].run(sql)
    actual = pair["duckdb"].run(sql)
    assert actual.rows == expected.rows
    assert [a.name for a in actual.schema] == [a.name for a in expected.schema]


def test_duckdb_in_differential_matrix():
    from repro.backend import differential_engines

    assert "duckdb" in differential_engines()
