"""The backend registry: the single switchboard for engine names.

Covers the registry contract the refactor introduced: duplicate names
are identity collisions (rejected), unknown names produce the one
canonical error listing every registered backend, optional backends
with missing dependencies degrade to "not registered" instead of
import errors, and every layer that validates an engine name (connect,
$REPRO_ENGINE, CLI, server) consults the same registry.
"""

from __future__ import annotations

import io

import pytest

import repro
from repro.backend import (
    BackendSpec,
    differential_engines,
    engine_names,
    get_spec,
    register,
    unknown_engine_message,
    unregister,
)
from repro.errors import PlanError, ProgrammingError


def _noop_plan_root(planner, node):  # pragma: no cover - never planned
    raise AssertionError("test backend should never plan")


def test_builtins_registered():
    names = engine_names()
    assert names[:4] == ("row", "vectorized", "sqlite", "sqlite-partition")
    # duckdb is optional: present iff the module is importable here.
    try:
        import duckdb  # noqa: F401

        assert "duckdb" in names
    except ImportError:
        assert "duckdb" not in names


def test_differential_matrix_is_registry_driven():
    assert set(differential_engines()) <= set(engine_names())
    assert "sqlite-partition" in differential_engines()


def test_register_custom_backend_and_connect():
    spec = BackendSpec(
        name="test-rowclone",
        kind="core",
        description="row engine under another name",
        plan_root=lambda planner, node: planner.plan(node),
    )
    assert register(spec) is True
    try:
        assert "test-rowclone" in engine_names()
        db = repro.connect(engine="test-rowclone")
        try:
            db.run("CREATE TABLE t (x INT)")
            db.run("INSERT INTO t VALUES (1), (2)")
            assert db.run("SELECT sum(x) FROM t").rows == [(3,)]
        finally:
            db.close()
    finally:
        unregister("test-rowclone")
    assert "test-rowclone" not in engine_names()


def test_duplicate_name_rejected():
    with pytest.raises(ProgrammingError, match="already registered"):
        register(
            BackendSpec(name="sqlite", kind="pushdown", plan_root=_noop_plan_root)
        )
    # Case-insensitive: names are normalised to lowercase identities.
    with pytest.raises(ProgrammingError, match="already registered"):
        register(BackendSpec(name="SQLite", plan_root=_noop_plan_root))


def test_spec_requires_plan_root():
    with pytest.raises(ProgrammingError, match="plan_root"):
        BackendSpec(name="incomplete")


def test_optional_backend_with_missing_module_degrades():
    spec = BackendSpec(
        name="test-missing-dep",
        kind="pushdown",
        requires=("no_such_module_xyz",),
        plan_root=_noop_plan_root,
    )
    assert spec.available() is False
    # register() returns False and leaves the name unknown — so using
    # it is an "unknown engine" error, never an ImportError.
    assert register(spec) is False
    assert "test-missing-dep" not in engine_names()
    with pytest.raises(PlanError, match="valid engines"):
        get_spec("test-missing-dep")


def test_unknown_engine_lists_registered_backends():
    with pytest.raises(PlanError) as excinfo:
        get_spec("no-such-engine")
    message = str(excinfo.value)
    for name in engine_names():
        assert name in message
    assert "no-such-engine" in message


def test_connect_unknown_engine_same_message():
    with pytest.raises(ProgrammingError) as excinfo:
        repro.connect(engine="no-such-engine")
    assert str(excinfo.value) == unknown_engine_message("no-such-engine")


def test_env_engine_error_names_the_variable(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "no-such-engine")
    with pytest.raises(ProgrammingError) as excinfo:
        repro.connect()
    message = str(excinfo.value)
    assert "$REPRO_ENGINE" in message
    assert message == unknown_engine_message("no-such-engine", env_var="REPRO_ENGINE")
    # An explicit engine= argument does not blame the environment.
    with pytest.raises(ProgrammingError) as explicit:
        repro.connect(engine="also-missing")
    assert "$REPRO_ENGINE" not in str(explicit.value)


def test_cli_engine_validation_uses_registry(capsys):
    from repro.cli import main

    assert main(["--engine", "no-such-engine"]) == 2
    err = capsys.readouterr().err
    for name in engine_names():
        assert name in err


def test_cli_accepts_registered_engine(tmp_path):
    from repro.cli import Shell

    out = io.StringIO()
    shell = Shell(db=repro.connect(engine="sqlite-partition"), out=out)
    shell.run(io.StringIO("CREATE TABLE t (x INT);\nINSERT INTO t VALUES (7);\nSELECT count(*) FROM t;\n"))
    assert "1" in out.getvalue()


def test_server_help_lists_registry(capsys):
    from repro.server.__main__ import build_parser

    help_text = build_parser().format_help()
    for name in engine_names():
        assert name in help_text
