"""Unit tests for the SQLite pushdown backend.

The differential harness (tests/differential) proves whole-query
agreement across engines; these tests pin down the backend's moving
parts directly: engine selection, lazy mirror sync, pushdown vs
fallback decisions, the UDF error channel, parameter binding, and the
dialect's rendering rules.
"""

from __future__ import annotations

import pytest

import repro
from repro.algebra import expressions as ax
from repro.algebra.to_sql import BROWSER_DIALECT, SQLiteDialect, expr_to_sql
from repro.backend.sqlite import SQLiteBackend, SQLiteQueryOp
from repro.datatypes import SQLType
from repro.errors import ExecutionError, ProgrammingError


@pytest.fixture()
def pair():
    """Identical tiny databases on the row engine and the sqlite backend."""
    connections = {}
    for engine in ("row", "sqlite"):
        conn = repro.connect(engine=engine)
        conn.run(
            "CREATE TABLE t (a int, b text, c float, d bool);"
            "CREATE TABLE s (x int, y text)"
        )
        conn.load_rows(
            "t",
            [
                (1, "Alpha", 1.5, True),
                (2, "beta", -2.5, False),
                (None, "Alpha", None, None),
                (-7, "gamma", 0.25, True),
            ],
        )
        conn.load_rows("s", [(1, "one"), (2, "two"), (2, "dos")])
        connections[engine] = conn
    return connections


def _agree(pair, sql, params=None):
    row = pair["row"].run(sql, params)
    sq = pair["sqlite"].run(sql, params)
    assert row.schema == sq.schema
    assert row.rows == sq.rows
    assert row.provenance_attrs == sq.provenance_attrs
    return sq


def _physical(conn, sql):
    return conn._prepared_for(conn.pipeline.parse(sql)[0]).physical


# ---------------------------------------------------------------------------
# Engine selection
# ---------------------------------------------------------------------------
class TestEngineSelection:
    def test_connect_engine_sqlite(self):
        assert repro.connect(engine="sqlite").engine == "sqlite"

    def test_environment_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "sqlite")
        assert repro.connect().engine == "sqlite"

    def test_unknown_engine_lists_sqlite(self):
        with pytest.raises(ProgrammingError, match="sqlite"):
            repro.connect(engine="postgres")

    def test_plan_cache_key_includes_engine(self, pair):
        # Same canonical SQL on both connections never shares plans:
        # each connection owns its cache, and the key carries the engine.
        sql = "SELECT a FROM t"
        assert isinstance(_physical(pair["sqlite"], sql), SQLiteQueryOp)
        assert not isinstance(_physical(pair["row"], sql), SQLiteQueryOp)


# ---------------------------------------------------------------------------
# Mirroring
# ---------------------------------------------------------------------------
class TestMirror:
    def test_sync_is_lazy_per_version(self, pair):
        conn = pair["sqlite"]
        backend = conn.pipeline.planner.sqlite_backend
        conn.run("SELECT a FROM t")
        synced = backend.tables_synced
        conn.run("SELECT a, b FROM t WHERE a > 0")
        assert backend.tables_synced == synced  # unchanged heap: no resync
        conn.run("INSERT INTO t VALUES (9, 'new', 0.5, FALSE)")
        result = conn.run("SELECT a FROM t WHERE a = 9")
        assert result.rows == [(9,)]
        assert backend.tables_synced == synced + 1

    def test_schema_change_resyncs(self, pair):
        conn = pair["sqlite"]
        assert conn.run("SELECT x, y FROM s").rows[0] == (1, "one")
        conn.run("DROP TABLE s; CREATE TABLE s (y text)")
        conn.load_rows("s", [("fresh",)])
        assert conn.run("SELECT y FROM s").rows == [("fresh",)]

    def test_one_statement_per_execution(self, pair):
        conn = pair["sqlite"]
        backend = conn.pipeline.planner.sqlite_backend
        conn.run("SELECT a, b FROM t JOIN s ON t.a = s.x WHERE a > 0")
        before = backend.statements_executed
        conn.run("SELECT a, b FROM t JOIN s ON t.a = s.x WHERE a > 0")
        assert backend.statements_executed == before + 1

    def test_drop_recreate_loop_never_serves_stale_rows(self):
        # Regression: the mirror signature must not key on a reusable
        # object address — a dropped table's heap can be freed and the
        # next CREATE can land on the same id() with the same version.
        conn = repro.connect(engine="sqlite")
        for i in range(40):
            conn.run("DROP TABLE IF EXISTS t; CREATE TABLE t (a int)")
            conn.run(f"INSERT INTO t VALUES ({i})")
            assert conn.run("SELECT a FROM t").rows == [(i,)], f"stale at {i}"

    def test_bool_values_roundtrip(self, pair):
        result = _agree(pair, "SELECT d, a FROM t")
        assert [row[0] for row in result.rows] == [True, False, None, True]
        assert result.schema[0].type is SQLType.BOOL


# ---------------------------------------------------------------------------
# Pushdown vs fallback
# ---------------------------------------------------------------------------
class TestPushdown:
    def test_spj_aggregate_pushes_down(self, pair):
        plan = _physical(
            pair["sqlite"],
            "SELECT b, count(*) AS n FROM t WHERE a IS NOT NULL GROUP BY b",
        )
        assert isinstance(plan, SQLiteQueryOp)
        assert not plan.slots  # fully native: no fragments, no subplans

    def test_root_setop_uses_row_plan_directly(self, pair):
        # An unsupported *root* skips the pointless wrap-in-a-fragment
        # round trip and just runs the row plan.
        sql = "SELECT a FROM t UNION SELECT x FROM s"
        assert not isinstance(_physical(pair["sqlite"], sql), SQLiteQueryOp)
        _agree(pair, sql)

    def test_setop_falls_back_per_subtree(self, pair):
        # Under a supported operator the set-op subtree becomes a
        # row-engine fragment while the rest stays pushed down.
        sql = "SELECT a FROM t UNION SELECT x FROM s ORDER BY a DESC LIMIT 3"
        plan = _physical(pair["sqlite"], sql)
        assert isinstance(plan, SQLiteQueryOp)
        assert any(slot.kind == "rows" for slot in plan.slots)
        _agree(pair, sql)

    def test_correlated_exists_pushes_down(self, pair):
        sql = "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM s WHERE s.x = t.a)"
        plan = _physical(pair["sqlite"], sql)
        assert isinstance(plan, SQLiteQueryOp)
        assert not plan.slots  # correlated EXISTS compiles inline
        _agree(pair, sql)

    def test_uncorrelated_scalar_binds_value(self, pair):
        sql = "SELECT a FROM t WHERE a > (SELECT min(x) FROM s)"
        plan = _physical(pair["sqlite"], sql)
        assert [slot.kind for slot in plan.slots] == ["scalar"]
        _agree(pair, sql)

    def test_multirow_scalar_subquery_raises_like_row_engine(self, pair):
        sql = "SELECT a FROM t WHERE a = (SELECT x FROM s)"
        errors = {}
        for engine, conn in pair.items():
            with pytest.raises(ExecutionError) as excinfo:
                conn.run(sql)
            errors[engine] = str(excinfo.value)
        assert errors["row"] == errors["sqlite"]
        assert "more than one row" in errors["sqlite"]

    def test_sublink_error_is_lazy_like_row_engine(self, pair):
        # Regression: an erroring uncorrelated sublink over an *empty*
        # outer relation never fires on the row engine (the lazy
        # subquery cache is never touched); the sqlite backend must not
        # raise it eagerly either.
        for conn in pair.values():
            conn.run("CREATE TABLE IF NOT EXISTS empty_t (a int)")
        sql = "SELECT a FROM empty_t WHERE a = (SELECT x FROM s)"
        assert _agree(pair, sql).rows == []
        # With a non-empty outer relation both engines raise it.
        errors = {}
        for engine, conn in pair.items():
            with pytest.raises(ExecutionError) as excinfo:
                conn.run("SELECT a FROM t WHERE a = (SELECT x FROM s)")
            errors[engine] = str(excinfo.value)
        assert errors["row"] == errors["sqlite"]

    def test_fallback_rolls_back_orphaned_slots(self, pair):
        # Regression: when a subtree attempt fails mid-compile (here the
        # unsupported ANY sublink), slots registered by the abandoned
        # attempt must not survive into the fallback plan.
        sql = (
            "SELECT a FROM t WHERE a IN (SELECT x FROM s) "
            "AND a = ANY (SELECT x FROM s) ORDER BY b"
        )
        plan = _physical(pair["sqlite"], sql)
        if isinstance(plan, SQLiteQueryOp):
            for slot in plan.slots:
                frag = slot.frag_table
                assert frag is None or frag in plan.sql, (
                    f"orphaned fragment {frag} materialized but never read"
                )
        _agree(pair, sql)

    def test_grouped_float_sum_falls_back(self, pair):
        # Float accumulation order inside SQLite's GROUP BY is not the
        # engine's first-seen order; the subtree must run on the row
        # engine (and still agree bit-for-bit).
        sql = "SELECT b, sum(c) AS s FROM t GROUP BY b"
        plan = _physical(pair["sqlite"], sql)
        assert any(slot.kind == "rows" for slot in plan.slots)
        _agree(pair, sql)

    def test_global_float_sum_pushes_down(self, pair):
        sql = "SELECT sum(c), avg(c) FROM t WHERE a IS NOT NULL"
        plan = _physical(pair["sqlite"], sql)
        assert isinstance(plan, SQLiteQueryOp) and not plan.slots
        _agree(pair, sql)


# ---------------------------------------------------------------------------
# Semantics preserved through SQLite
# ---------------------------------------------------------------------------
class TestSemantics:
    def test_like_stays_case_sensitive(self, pair):
        # Native SQLite LIKE is case-insensitive for ASCII; the UDF isn't.
        assert _agree(pair, "SELECT b FROM t WHERE b LIKE 'alpha'").rows == []
        assert len(_agree(pair, "SELECT b FROM t WHERE b ILIKE 'alpha'").rows) == 2

    def test_integer_division_truncates_toward_zero(self, pair):
        _agree(pair, "SELECT a / 2, a % 3 FROM t WHERE a IS NOT NULL")

    def test_division_by_zero_column_raises_identically(self, pair):
        sql = "SELECT a / (a - a) FROM t WHERE a = 1"
        errors = {}
        for engine, conn in pair.items():
            with pytest.raises(ExecutionError) as excinfo:
                conn.run(sql)
            errors[engine] = str(excinfo.value)
        assert errors["row"] == errors["sqlite"] == "division by zero"

    def test_null_ordering_matches_postgres_defaults(self, pair):
        _agree(pair, "SELECT a FROM t ORDER BY a")  # NULLS LAST
        _agree(pair, "SELECT a FROM t ORDER BY a DESC")  # NULLS FIRST
        _agree(pair, "SELECT a FROM t ORDER BY a ASC NULLS FIRST")
        _agree(pair, "SELECT a FROM t ORDER BY a DESC NULLS LAST")

    def test_type_errors_survive_pushdown(self, pair):
        # Regression: SQLite would silently coerce where the engine
        # raises; the compiler's static gates must force fallback (and
        # hence identical errors) even through its own div/mod rewrites.
        for sql in (
            "SELECT (a / (a - a)) || 'x' FROM t WHERE a = 1",
            "SELECT a FROM t WHERE a IS DISTINCT FROM 'oops'",
            "SELECT b || a FROM t",
        ):
            errors = {}
            for engine, conn in pair.items():
                with pytest.raises(ExecutionError) as excinfo:
                    conn.run(sql)
                errors[engine] = str(excinfo.value)
            assert errors["row"] == errors["sqlite"], sql

    def test_text_param_rejected_at_bind_in_concat(self, pair):
        # `? || 'a'` pins the slot to text at bind time on every engine.
        from repro.errors import TypeCheckError

        for conn in pair.values():
            with pytest.raises(TypeCheckError, match="expects text"):
                conn.run("SELECT ? || 'a' FROM t", (True,))

    def test_oversized_parameter_rescues_to_row_engine(self, pair):
        # A parameter beyond SQLite's 64-bit range cannot bind; instead
        # of erroring (the engines compute this fine), the statement
        # escapes to the row-engine rescue and all engines agree.
        results = {
            engine: conn.run("SELECT a FROM t WHERE a < ?", (2**70,)).rows
            for engine, conn in pair.items()
        }
        assert results["row"] == results["sqlite"]
        # Rescue is per-execution: an in-range parameter on the same
        # cached plan goes back through SQLite and still agrees.
        results = {
            engine: conn.run("SELECT a FROM t WHERE a < ?", (2,)).rows
            for engine, conn in pair.items()
        }
        assert results["row"] == results["sqlite"]

    def test_three_valued_having(self, pair):
        _agree(
            pair,
            "SELECT b, max(a) AS m FROM t GROUP BY b HAVING max(a) > 1",
        )

    def test_outer_join_padding_order(self, pair):
        _agree(pair, "SELECT b, y FROM t LEFT JOIN s ON t.a = s.x")
        _agree(pair, "SELECT b, y FROM t FULL JOIN s ON t.a = s.x")

    def test_padding_sorts_last_even_under_sort_key_ordinals(self, pair):
        # Regression: when the padded side's ordinals come from a sort
        # key with NULLS FIRST semantics (ORDER BY ... DESC in a FROM
        # subquery), unmatched right rows must still append at the end —
        # padding NULLs are not sort-key NULLs.
        sql = (
            "SELECT a, x, y FROM "
            "(SELECT a FROM t ORDER BY a DESC LIMIT 10) o "
            "RIGHT JOIN s ON o.a = s.x"
        )
        _agree(pair, sql)
        sql_full = (
            "SELECT a, x, y FROM "
            "(SELECT a FROM t ORDER BY a DESC LIMIT 10) o "
            "FULL JOIN s ON o.a = s.x"
        )
        _agree(pair, sql_full)

    def test_float_aggregation_matches_on_any_sqlite_version(self, pair):
        # Both the native (< 3.44) and the repro_fsum (>= 3.44, Kahan
        # era) paths must reproduce naive left-to-right accumulation;
        # force the UDF path here so it is exercised on every host.
        sqlite_conn = pair["sqlite"]
        backend = sqlite_conn.pipeline.planner.sqlite_backend
        saved = backend.native_float_agg
        backend.native_float_agg = False
        try:
            sqlite_conn.plan_cache.clear()
            sql = "SELECT sum(c), avg(c) FROM t"
            plan = _physical(sqlite_conn, sql)
            assert "repro_fsum" in plan.sql and "repro_favg" in plan.sql
            _agree(pair, sql)
        finally:
            backend.native_float_agg = saved
            sqlite_conn.plan_cache.clear()

    def test_parameters_rebind_per_execution(self, pair):
        stmt = pair["sqlite"].prepare("SELECT a FROM t WHERE a > ?")
        row_stmt = pair["row"].prepare("SELECT a FROM t WHERE a > ?")
        for threshold in (0, 1, -10):
            assert stmt.execute((threshold,)).rows == row_stmt.execute((threshold,)).rows

    def test_provenance_pushdown(self, pair):
        result = _agree(pair, "SELECT PROVENANCE a, b FROM t WHERE a > 0")
        assert result.provenance_attrs == ("prov_t_a", "prov_t_b", "prov_t_c", "prov_t_d")


# ---------------------------------------------------------------------------
# Dialect rendering
# ---------------------------------------------------------------------------
class TestDialect:
    def test_bool_literals(self):
        true = ax.Const.of(True)
        assert expr_to_sql(true, BROWSER_DIALECT) == "TRUE"
        assert expr_to_sql(true, SQLiteDialect()) == "1"

    def test_null_safe_comparison_uses_is(self):
        test = ax.DistinctTest(ax.Column("a"), ax.Column("b"), negated=True)
        assert expr_to_sql(test, BROWSER_DIALECT) == "(a IS NOT DISTINCT FROM b)"
        assert expr_to_sql(test, SQLiteDialect()) == '("a" IS "b")'

    def test_functions_route_through_udfs(self):
        call = ax.FuncExpr("upper", (ax.Column("b"),))
        assert expr_to_sql(call, BROWSER_DIALECT) == "upper(b)"
        assert expr_to_sql(call, SQLiteDialect()) == 'repro_upper("b")'

    def test_casts_route_through_udfs(self):
        cast = ax.CastExpr(ax.Column("a"), SQLType.BOOL)
        assert expr_to_sql(cast, SQLiteDialect()) == 'repro_cast_bool("a")'

    def test_keyword_aliases_always_quoted(self):
        assert expr_to_sql(ax.Column("case"), SQLiteDialect()) == '"case"'
        assert expr_to_sql(ax.Column("case"), BROWSER_DIALECT) == "case"

    def test_params_are_slot_named(self):
        param = ax.Param(3, None)
        assert expr_to_sql(param, SQLiteDialect()) == ":p3"
        assert expr_to_sql(param, BROWSER_DIALECT) == "?"


class TestBackendObject:
    def test_backend_created_lazily(self):
        conn = repro.connect(engine="row")
        assert conn.pipeline.planner._backend is None
        conn = repro.connect(engine="sqlite")
        assert conn.pipeline.planner._backend is None
        conn.run("CREATE TABLE t (a int)")
        conn.run("SELECT a FROM t")
        assert isinstance(conn.pipeline.planner._backend, SQLiteBackend)

    def test_close_closes_backend(self):
        conn = repro.connect(engine="sqlite")
        conn.run("CREATE TABLE t (a int); INSERT INTO t VALUES (1)")
        conn.run("SELECT a FROM t")
        backend = conn.pipeline.planner.sqlite_backend
        conn.close()
        with pytest.raises(Exception):
            backend.connection.execute("SELECT 1")
