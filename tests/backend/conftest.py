"""Backend-suite collection rules.

DuckDB is an optional backend dependency that is deliberately not
installed in the local tier-1 environment. Without this rule,
``test_duckdb.py`` sits in every run as a permanent unexplained skip;
deselecting it at collection time keeps the tier-1 report at zero
skips while the dedicated CI job — which installs ``duckdb`` and
registers the backend — still collects and runs the file (see
.github/workflows/ci.yml, job ``duckdb``).
"""

import importlib.util

collect_ignore = []
if importlib.util.find_spec("duckdb") is None:
    collect_ignore.append("test_duckdb.py")
