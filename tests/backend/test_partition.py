"""The partitioned sqlite backend: hash-sharded mirrors, merged exactly.

``engine="sqlite-partition"`` proves the backend registry end to end:
it reuses the shared pushdown compiler, fans execution out across N
sqlite connections on a thread pool, and merges ordered streams and
partial aggregates back into the bit-identical result the row engine
would produce. These tests pin the plan-routing decisions (what
partitions vs what delegates), the exact-merge semantics, the rescue
path, and the ``$REPRO_PARTITIONS`` knob.
"""

from __future__ import annotations

import pytest

import repro
from repro.backend.partition import (
    PartitionedQueryOp,
    PartitionedSQLiteBackend,
    resolve_shard_count,
)
from repro.errors import ProgrammingError

INT64_MAX = 2**63 - 1


@pytest.fixture(params=(2, 3))
def db(request, monkeypatch):
    monkeypatch.setenv("REPRO_PARTITIONS", str(request.param))
    connection = repro.connect(engine="sqlite-partition")
    connection.run("CREATE TABLE t (k INT, grp TEXT, x FLOAT)")
    connection.run(
        "INSERT INTO t VALUES "
        "(5, 'a', 1.5), (2, 'b', 2.5), (9, 'a', 0.5), "
        "(4, 'c', 3.5), (7, 'b', 4.5), (1, 'a', 5.5), (6, NULL, 6.5)"
    )
    yield connection
    connection.close()


def _backend(connection) -> PartitionedSQLiteBackend:
    backend = connection.pipeline.planner.backend
    assert isinstance(backend, PartitionedSQLiteBackend)
    return backend


def test_shard_count_follows_env(db):
    assert len(_backend(db).shards) in (2, 3)
    assert len(_backend(db).shards) == _backend(db).shard_count


def test_global_aggregate_partitions_and_matches(db):
    backend = _backend(db)
    before = backend.partitioned_plans
    result = db.run("SELECT count(*), sum(k), min(k), max(k), avg(k) FROM t")
    assert result.rows == [(7, 34, 1, 9, 34 / 7)]
    assert backend.partitioned_plans == before + 1
    assert backend.rescues == 0


def test_grouped_aggregate_merges_in_first_seen_order(db):
    rows = db.run("SELECT grp, count(*), sum(k) FROM t GROUP BY grp").rows
    # Global first-seen order of groups, exactly as the row engine
    # reports them — not an artifact of shard interleaving.
    assert rows == [("a", 3, 15), ("b", 2, 9), ("c", 1, 4), (None, 1, 6)]


def test_distinct_preserves_first_seen_order(db):
    rows = db.run("SELECT DISTINCT grp FROM t").rows
    assert rows == [("a",), ("b",), ("c",), (None,)]


def test_order_by_merges_sorted_streams(db):
    rows = db.run("SELECT k FROM t WHERE k > 2 ORDER BY k DESC").rows
    assert rows == [(9,), (7,), (6,), (5,), (4,)]


def test_plan_is_partitioned_op(db):
    pipeline = db.pipeline
    (statement,) = pipeline.parse("SELECT count(*) FROM t")
    prepared = pipeline.prepare(statement)
    assert isinstance(prepared.physical, PartitionedQueryOp)


def test_float_aggregate_delegates(db):
    # float sum is order-sensitive; partial merge could drift a ULP, so
    # the shape is delegated to the single-connection backend instead.
    backend = _backend(db)
    before = backend.delegated_plans
    result = db.run("SELECT sum(x) FROM t")
    assert result.rows == [(24.5,)]
    assert backend.delegated_plans == before + 1


def test_subquery_delegates(db):
    backend = _backend(db)
    before = backend.delegated_plans
    rows = db.run("SELECT k FROM t WHERE k = (SELECT max(k) FROM t)").rows
    assert rows == [(9,)]
    assert backend.delegated_plans > before


def test_join_delegates(db):
    backend = _backend(db)
    before = backend.delegated_plans
    db.run("CREATE TABLE names (grp TEXT, label TEXT)")
    db.run("INSERT INTO names VALUES ('a', 'alpha')")
    rows = db.run(
        "SELECT label, k FROM t, names WHERE t.grp = names.grp ORDER BY k"
    ).rows
    assert rows == [("alpha", 1), ("alpha", 5), ("alpha", 9)]
    assert backend.delegated_plans > before


def test_provenance_queries_still_agree(db):
    rows = db.run("SELECT PROVENANCE grp, count(*) FROM t GROUP BY grp").rows
    reference = repro.connect(engine="row")
    try:
        reference.run("CREATE TABLE t (k INT, grp TEXT, x FLOAT)")
        reference.run(
            "INSERT INTO t VALUES "
            "(5, 'a', 1.5), (2, 'b', 2.5), (9, 'a', 0.5), "
            "(4, 'c', 3.5), (7, 'b', 4.5), (1, 'a', 5.5), (6, NULL, 6.5)"
        )
        expected = reference.run(
            "SELECT PROVENANCE grp, count(*) FROM t GROUP BY grp"
        ).rows
    finally:
        reference.close()
    assert rows == expected


def test_int64_overflow_rescued(db):
    backend = _backend(db)
    db.run("CREATE TABLE big (v INT)")
    # Positions 0 and 6 share a shard at both 2 and 3 shards, so that
    # one shard's native int64 sum overflows regardless of the count.
    db.run(
        f"INSERT INTO big VALUES ({INT64_MAX}), (1), (1), (1), (1), (1), ({INT64_MAX})"
    )
    before = backend.rescues
    # Exact bignum answer: the overflowing shard escapes and the op
    # rescues through the row engine rather than wrapping around.
    result = db.run("SELECT sum(v) FROM big")
    assert result.rows == [(2 * INT64_MAX + 5,)]
    assert result.rows[0][0] > INT64_MAX
    assert backend.rescues > before


def test_transactions_and_updates_visible(db):
    db.run("BEGIN")
    db.run("INSERT INTO t VALUES (100, 'z', 0.0)")
    assert db.run("SELECT count(*) FROM t").rows == [(8,)]
    db.run("ROLLBACK")
    assert db.run("SELECT count(*) FROM t").rows == [(7,)]
    db.run("UPDATE t SET k = k + 10 WHERE grp = 'c'")
    assert db.run("SELECT max(k) FROM t").rows == [(14,)]


def test_cache_token_varies_with_shard_count(monkeypatch):
    monkeypatch.setenv("REPRO_PARTITIONS", "2")
    two = repro.connect(engine="sqlite-partition")
    monkeypatch.setenv("REPRO_PARTITIONS", "3")
    three = repro.connect(engine="sqlite-partition")
    try:
        token_two = two.pipeline.planner.cache_token
        token_three = three.pipeline.planner.cache_token
        assert token_two != token_three
        assert token_two[0] == token_three[0] == "sqlite-partition"
    finally:
        two.close()
        three.close()


@pytest.mark.parametrize("raw", ("0", "-1", "nope", "2.5", ""))
def test_bad_partitions_env_rejected(monkeypatch, raw):
    monkeypatch.setenv("REPRO_PARTITIONS", raw)
    if raw == "":
        # Empty string means unset: fall back to the default.
        assert resolve_shard_count() >= 1
        return
    with pytest.raises(ProgrammingError, match="REPRO_PARTITIONS"):
        resolve_shard_count()


def test_default_shard_count_bounded(monkeypatch):
    monkeypatch.delenv("REPRO_PARTITIONS", raising=False)
    assert 2 <= resolve_shard_count() <= 8
