"""Rewrite-strategy selection tests (paper §2.2): candidates, heuristic
and cost-based choice."""

from __future__ import annotations

import pytest

from repro import RewriteError, RewriteOptions, connect
from repro.analyzer import Analyzer
from repro.core.context import RewriteContext
from repro.core.influence import rewrite_influence
from repro.core.strategies import union_strategy_candidates
from repro.sql import parse_statement
from repro.algebra import nodes as an
from repro.algebra.tree import walk_tree


def make_db(**options):
    db = connect(RewriteOptions(**options)) if options else connect()
    db.run(
        """
        CREATE TABLE a (x int);
        CREATE TABLE b (x int);
        INSERT INTO a VALUES (1), (2), (2), (3);
        INSERT INTO b VALUES (2), (3), (4);
        """
    )
    return db


def union_node(db, all_=False):
    sql = "SELECT x FROM a UNION {}SELECT x FROM b".format("ALL " if all_ else "")
    query = parse_statement(sql).query
    return Analyzer(db.catalog).analyze_query(query)


class TestCandidates:
    def test_set_union_has_two_candidates(self):
        db = make_db()
        node = union_node(db)
        assert isinstance(node, an.SetOpNode)
        ctx = RewriteContext(catalog=db.catalog, options=db.options)
        left = rewrite_influence(node.left, ctx)
        right = rewrite_influence(node.right, ctx)
        candidates = union_strategy_candidates(node, left, right, ctx)
        assert set(candidates) == {"pad", "joinback"}

    def test_union_all_has_only_pad(self):
        db = make_db()
        node = union_node(db, all_=True)
        ctx = RewriteContext(catalog=db.catalog, options=db.options)
        left = rewrite_influence(node.left, ctx)
        right = rewrite_influence(node.right, ctx)
        candidates = union_strategy_candidates(node, left, right, ctx)
        assert set(candidates) == {"pad"}

    def test_joinback_shape_differs_from_pad(self):
        db = make_db()
        node = union_node(db)
        ctx = RewriteContext(catalog=db.catalog, options=db.options)
        left = rewrite_influence(node.left, ctx)
        right = rewrite_influence(node.right, ctx)
        candidates = union_strategy_candidates(node, left, right, ctx)
        pad_joins = sum(isinstance(n, an.Join) for n in walk_tree(candidates["pad"].node))
        joinback_joins = sum(
            isinstance(n, an.Join) for n in walk_tree(candidates["joinback"].node)
        )
        assert joinback_joins == pad_joins + 1


class TestChoice:
    UNION_SQL = "SELECT PROVENANCE x FROM a UNION SELECT x FROM b"

    def expected_rows(self):
        return sorted(
            make_db().run(self.UNION_SQL).rows, key=repr
        )

    @pytest.mark.parametrize("strategy", ["pad", "joinback", "heuristic", "cost"])
    def test_all_strategies_agree_on_result(self, strategy):
        db = make_db(union_strategy=strategy)
        result = db.run(self.UNION_SQL)
        assert sorted(result.rows, key=repr) == self.expected_rows()

    def test_joinback_rejected_for_union_all(self):
        db = make_db(union_strategy="joinback")
        with pytest.raises(RewriteError, match="UNION ALL"):
            db.run("SELECT PROVENANCE x FROM a UNION ALL SELECT x FROM b")

    def test_heuristic_falls_back_to_pad_for_union_all(self):
        db = make_db(union_strategy="heuristic")
        result = db.run("SELECT PROVENANCE x FROM a UNION ALL SELECT x FROM b")
        assert len(result) == 7

    def test_cost_mode_runs_estimator(self):
        db = make_db(union_strategy="cost")
        result = db.run(self.UNION_SQL)
        assert len(result) == 7  # 4 witnesses from a, 3 from b

    def test_invalid_option_rejected_eagerly(self):
        with pytest.raises(ValueError):
            RewriteOptions(union_strategy="nope")
        with pytest.raises(ValueError):
            RewriteOptions(sublink_strategy="nope")
        with pytest.raises(ValueError):
            RewriteOptions(difference_semantics="nope")
