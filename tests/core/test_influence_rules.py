"""Per-operator tests of the influence (PI-CS) rewrite rules.

Each test pins down the provenance the paper's rules prescribe for one
operator, on data small enough to enumerate by hand.
"""

from __future__ import annotations

import pytest

from repro import RewriteOptions, connect


@pytest.fixture
def db():
    session = connect()
    session.run(
        """
        CREATE TABLE r (a int, b text);
        CREATE TABLE s (c int, d text);
        INSERT INTO r VALUES (1, 'x'), (2, 'y'), (3, 'x');
        INSERT INTO s VALUES (1, 'one'), (1, 'uno'), (4, 'four');
        """
    )
    return session


def rows(relation):
    return sorted(relation.rows, key=repr)


class TestBaseAndSPJ:
    def test_base_relation_provenance_is_itself(self, db):
        result = db.run("SELECT PROVENANCE a, b FROM r")
        assert result.columns == ["a", "b", "prov_r_a", "prov_r_b"]
        assert all(row[0] == row[2] and row[1] == row[3] for row in result.rows)

    def test_projection_keeps_full_tuple_provenance(self, db):
        result = db.run("SELECT PROVENANCE b FROM r WHERE a = 2")
        assert result.rows == [("y", 2, "y")]

    def test_selection_filters_provenance_rows(self, db):
        result = db.run("SELECT PROVENANCE a FROM r WHERE b = 'x'")
        assert rows(result) == [(1, 1, "x"), (3, 3, "x")]

    def test_computed_projection_still_has_witnesses(self, db):
        result = db.run("SELECT PROVENANCE a * 10 AS a10 FROM r WHERE a = 1")
        assert result.rows == [(10, 1, "x")]

    def test_join_concatenates_witnesses(self, db):
        result = db.run(
            "SELECT PROVENANCE b, d FROM r JOIN s ON r.a = s.c"
        )
        assert result.columns == ["b", "d", "prov_r_a", "prov_r_b", "prov_s_c", "prov_s_d"]
        assert rows(result) == [
            ("x", "one", 1, "x", 1, "one"),
            ("x", "uno", 1, "x", 1, "uno"),
        ]

    def test_left_outer_join_null_pads_provenance(self, db):
        result = db.run(
            "SELECT PROVENANCE b, d FROM r LEFT JOIN s ON r.a = s.c WHERE r.a = 2"
        )
        assert result.rows == [("y", None, 2, "y", None, None)]

    def test_self_join_numbering(self, db):
        result = db.run(
            "SELECT PROVENANCE r1.a FROM r r1 JOIN r r2 ON r1.a = r2.a"
        )
        assert result.columns == [
            "a",
            "prov_r_a",
            "prov_r_b",
            "prov_r_1_a",
            "prov_r_1_b",
        ]

    def test_cross_join(self, db):
        result = db.run("SELECT PROVENANCE r.a FROM r, s WHERE r.a = 1 AND s.c = 4")
        assert result.rows == [(1, 1, "x", 4, "four")]


class TestAggregation:
    def test_group_provenance_replicates_per_witness(self, db):
        result = db.run(
            "SELECT PROVENANCE b, count(*) AS n FROM r GROUP BY b"
        )
        x_rows = [row for row in result.rows if row[0] == "x"]
        assert len(x_rows) == 2  # two witnesses for group 'x'
        assert all(row[1] == 2 for row in x_rows)
        assert sorted(row[2] for row in x_rows) == [1, 3]

    def test_global_aggregate_collects_all_rows(self, db):
        result = db.run("SELECT PROVENANCE count(*) AS n FROM r")
        assert len(result) == 3
        assert all(row[0] == 3 for row in result.rows)

    def test_global_aggregate_over_empty_input_keeps_result_row(self, db):
        result = db.run("SELECT PROVENANCE count(*) AS n FROM r WHERE a > 99")
        assert result.rows == [(0, None, None)]

    def test_null_group_keys_still_find_witnesses(self, db):
        db.run("INSERT INTO r VALUES (NULL, 'x'), (NULL, 'z')")
        result = db.run(
            "SELECT PROVENANCE a, count(*) AS n FROM r GROUP BY a"
        )
        null_rows = [row for row in result.rows if row[0] is None]
        # Two NULL-keyed witnesses, found via IS NOT DISTINCT FROM.
        assert len(null_rows) == 2
        assert all(row[1] == 2 for row in null_rows)

    def test_having_filters_with_provenance(self, db):
        result = db.run(
            "SELECT PROVENANCE b, count(*) AS n FROM r GROUP BY b HAVING count(*) > 1"
        )
        assert all(row[0] == "x" for row in result.rows)
        assert len(result) == 2

    def test_aggregate_values_match_original(self, db):
        original = db.run("SELECT b, sum(a) FROM r GROUP BY b")
        prov = db.run("SELECT PROVENANCE b, sum(a) FROM r GROUP BY b")
        assert set((row[0], row[1]) for row in prov.rows) == set(original.rows)


class TestSetOperations:
    def test_union_pads_non_contributing_side(self, db):
        result = db.run("SELECT PROVENANCE a FROM r UNION SELECT c FROM s")
        for row in result.rows:
            left_side = row[1] is not None
            right_side = row[3] is not None
            assert left_side != right_side  # exactly one branch contributes

    def test_union_value_in_both_branches_has_two_witness_rows(self, db):
        result = db.run("SELECT PROVENANCE a FROM r UNION SELECT c FROM s")
        ones = [row for row in result.rows if row[0] == 1]
        # 1 occurs in r once and in s twice -> three witness rows.
        assert len(ones) == 3

    def test_union_all_keeps_per_duplicate_witnesses(self, db):
        result = db.run("SELECT PROVENANCE a FROM r UNION ALL SELECT c FROM s")
        assert len(result) == 6

    def test_intersect_joins_witnesses_from_both_sides(self, db):
        result = db.run("SELECT PROVENANCE a FROM r INTERSECT SELECT c FROM s")
        # Only value 1 is in both; r has one witness, s has two.
        assert len(result) == 2
        for row in result.rows:
            assert row[0] == 1
            assert row[1] == 1 and row[3] == 1  # both sides' witnesses present

    def test_except_lineage_attaches_all_right_tuples(self, db):
        result = db.run("SELECT PROVENANCE a FROM r EXCEPT SELECT c FROM s")
        # Survivors: 2 and 3; each carries its left witness crossed with
        # every tuple of s (3 tuples) under lineage semantics.
        assert len(result) == 6
        survivors = {row[0] for row in result.rows}
        assert survivors == {2, 3}
        assert all(row[3] is not None for row in result.rows)

    def test_except_left_only_option(self):
        db = connect(RewriteOptions(difference_semantics="left-only"))
        db.run(
            "CREATE TABLE r (a int); CREATE TABLE s (c int);"
            "INSERT INTO r VALUES (1), (2); INSERT INTO s VALUES (2)"
        )
        result = db.run("SELECT PROVENANCE a FROM r EXCEPT SELECT c FROM s")
        assert result.rows == [(1, 1, None)]

    def test_except_survives_empty_right_side(self, db):
        result = db.run(
            "SELECT PROVENANCE a FROM r EXCEPT SELECT c FROM s WHERE c > 99"
        )
        # T2 is empty: all of r survives, right provenance is NULL.
        assert len(result) == 3
        assert all(row[3] is None for row in result.rows)


class TestOtherOperators:
    def test_distinct_replicates_per_witness(self, db):
        result = db.run("SELECT PROVENANCE DISTINCT b FROM r")
        x_rows = [row for row in result.rows if row[0] == "x"]
        assert len(x_rows) == 2

    def test_order_by_preserved(self, db):
        result = db.run("SELECT PROVENANCE a FROM r ORDER BY a DESC")
        assert [row[0] for row in result.rows] == [3, 2, 1]

    def test_limit_join_back(self, db):
        result = db.run("SELECT PROVENANCE a FROM r ORDER BY a LIMIT 1")
        assert result.rows == [(1, 1, "x")]

    def test_provenance_of_view_unfolds(self, db):
        db.run("CREATE VIEW big AS SELECT a FROM r WHERE a >= 2")
        result = db.run("SELECT PROVENANCE a FROM big")
        assert result.columns == ["a", "prov_r_a", "prov_r_b"]
        assert rows(result) == [(2, 2, "y"), (3, 3, "x")]

    def test_provenance_without_from(self, db):
        result = db.run("SELECT PROVENANCE 1 AS one")
        assert result.rows == [(1,)]
        assert result.provenance_attrs == ()


class TestResultAnnotation:
    def test_relation_knows_provenance_attrs(self, db):
        result = db.run("SELECT PROVENANCE a FROM r")
        assert result.provenance_attrs == ("prov_r_a", "prov_r_b")
        assert result.original_attrs == ["a"]

    def test_plain_query_has_no_provenance_attrs(self, db):
        assert db.run("SELECT a FROM r").provenance_attrs == ()

    def test_prov_name_collision_with_user_column(self, db):
        db.run("CREATE TABLE odd (prov_odd_z int, z int); INSERT INTO odd VALUES (7, 8)")
        result = db.run("SELECT PROVENANCE prov_odd_z, z FROM odd")
        # Names stay unique even though the user column collides with the
        # generated provenance name.
        assert len(set(result.columns)) == len(result.columns)
        assert len(result) == 1
