"""GROUP BY expressions containing subqueries in provenance rewrites.

Regression for the limitation this PR removes: ``SELECT PROVENANCE
count(*) FROM t GROUP BY (SELECT max(c) FROM s)`` used to raise
``RewriteError`` under both PI-CS and C-CS. The shared fix
(:func:`repro.core.influence.prepare_aggregate_rewrite`) pre-projects
the sublink expression below the aggregate so the join-back condition
only copies a plain column.
"""

from __future__ import annotations

import pytest

from repro import connect
from repro.algebra import expressions as ax
from repro.algebra import nodes as an
from repro.core.context import RewriteContext
from repro.core.influence import prepare_aggregate_rewrite


def _db(engine=None):
    conn = connect(engine=engine)
    conn.run("CREATE TABLE t (a int, c int); CREATE TABLE s (k int, c int)")
    conn.load_rows("t", [(1, 10), (2, 20), (3, 10)])
    conn.load_rows("s", [(1, 15), (2, 25)])
    return conn


UNCORRELATED = "count(*) FROM t GROUP BY (SELECT max(c) FROM s)"
CORRELATED = "count(*) FROM t GROUP BY (SELECT max(s.c) FROM s WHERE s.k = t.a)"
EMBEDDED = "count(*) FROM t GROUP BY a + (SELECT min(c) FROM s)"
KEYED = "(SELECT max(c) FROM s) AS g, sum(c) AS n FROM t GROUP BY (SELECT max(c) FROM s)"


class TestInfluence:
    def test_uncorrelated_sublink_group_key(self):
        conn = _db()
        rows = conn.execute("SELECT PROVENANCE " + UNCORRELATED).fetchall()
        # One group (max(c) = 25 for every row) with all three witnesses.
        assert rows == [(3, 1, 10), (3, 2, 20), (3, 3, 10)]

    def test_correlated_sublink_group_key(self):
        conn = _db()
        rows = conn.execute("SELECT PROVENANCE " + CORRELATED).fetchall()
        # Groups: t.a=1 -> 15, t.a=2 -> 25, t.a=3 -> NULL; one witness each.
        assert rows == [(1, 1, 10), (1, 2, 20), (1, 3, 10)]

    def test_sublink_embedded_in_expression(self):
        conn = _db()
        rows = conn.execute("SELECT PROVENANCE " + EMBEDDED).fetchall()
        assert sorted(rows) == [(1, 1, 10), (1, 2, 20), (1, 3, 10)]

    def test_group_key_also_projected(self):
        conn = _db()
        rows = conn.execute("SELECT PROVENANCE " + KEYED).fetchall()
        assert rows == [(25, 40, 1, 10), (25, 40, 2, 20), (25, 40, 3, 10)]

    def test_matches_plain_aggregate_values(self):
        conn = _db()
        plain = conn.execute("SELECT " + UNCORRELATED).fetchall()
        provenance = conn.execute("SELECT PROVENANCE " + UNCORRELATED).fetchall()
        assert {row[0] for row in provenance} == {row[0] for row in plain}


class TestCopySemantics:
    @pytest.mark.parametrize("mode", ["COPY PARTIAL", "COPY COMPLETE"])
    def test_copy_semantics_accept_sublink_group_key(self, mode):
        conn = _db()
        sql = f"SELECT PROVENANCE ON CONTRIBUTION ({mode}) " + UNCORRELATED
        rows = conn.execute(sql).fetchall()
        # count(*) copies nothing and the group key is computed, so the
        # provenance columns are NULL-masked — but the query runs and the
        # witnesses' multiplicity is preserved.
        assert rows == [(3, None, None)] * 3

    def test_copied_group_key_not_affected(self):
        # A plain-column group key next to the fixed sublink path still
        # copies under C-CS.
        conn = _db()
        sql = (
            "SELECT PROVENANCE ON CONTRIBUTION (COPY PARTIAL) "
            "c AS g, count(*) AS n FROM t "
            "GROUP BY c, (SELECT max(c) FROM s)"
        )
        rows = conn.execute(sql).fetchall()
        assert sorted(rows) == [(10, 2, None, 10), (10, 2, None, 10), (20, 1, None, 20)]


class TestEngineAgreement:
    @pytest.mark.parametrize("sql_tail", [UNCORRELATED, CORRELATED, EMBEDDED, KEYED])
    def test_three_engines_agree(self, sql_tail):
        sql = "SELECT PROVENANCE " + sql_tail
        outcomes = {}
        for engine in ("row", "vectorized", "sqlite"):
            cursor = _db(engine).execute(sql)
            outcomes[engine] = (cursor.fetchall(), cursor.description)
        assert outcomes["row"] == outcomes["vectorized"] == outcomes["sqlite"]


class TestSharedHelper:
    def test_no_sublink_returns_same_node(self):
        conn = _db()
        node = conn.profile("SELECT c, count(*) FROM t GROUP BY c", execute=False).analyzed
        aggregate = next(
            n
            for n in _walk(node)
            if isinstance(n, an.Aggregate)
        )
        ctx = RewriteContext(catalog=conn.catalog)
        assert prepare_aggregate_rewrite(aggregate, ctx) is aggregate

    def test_sublink_group_key_is_preprojected(self):
        conn = _db()
        node = conn.profile(
            "SELECT " + UNCORRELATED, execute=False
        ).analyzed
        aggregate = next(n for n in _walk(node) if isinstance(n, an.Aggregate))
        ctx = RewriteContext(catalog=conn.catalog)
        prepared = prepare_aggregate_rewrite(aggregate, ctx)
        assert prepared is not aggregate
        assert isinstance(prepared.child, an.Project)
        # The group key became a plain column reference; the sublink
        # moved into the projection below.
        (_, group_expr), = prepared.group_items
        assert isinstance(group_expr, ax.Column)
        assert prepared.schema.names == aggregate.schema.names
        assert any(
            isinstance(expr, ax.SubqueryExpr) for _, expr in prepared.child.items
        )


def _walk(node):
    yield node
    for child in node.children:
        yield from _walk(child)
