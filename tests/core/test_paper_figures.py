"""Byte-exact reproduction of the paper's worked examples.

* Figure 1: the example database and results of q1/q3.
* Figure 2: the full provenance relation of q1 (schema and all four
  tuples with their NULL padding).
* §2.1: the provenance schema of q1 as printed in the paper.
* §2.4: all three SQL-PLE listings.
"""

from __future__ import annotations

from repro.workloads.forum import (
    FORUM_QUERIES,
    Q1,
    Q3,
    SQLPLE_AGGREGATION,
    SQLPLE_BASERELATION,
    SQLPLE_QUERYING_PROVENANCE,
)


def sorted_rows(relation):
    return sorted(relation.rows, key=repr)


class TestFigure1:
    def test_tables_match_paper(self, forum_db):
        assert sorted_rows(forum_db.run("SELECT * FROM messages")) == [
            (1, "lorem ipsum ...", 3),
            (4, "hi there ...", 2),
        ]
        assert sorted_rows(forum_db.run("SELECT * FROM users")) == [
            (1, "Bert"),
            (2, "Gert"),
            (3, "Gertrud"),
        ]
        assert sorted_rows(forum_db.run("SELECT * FROM imports")) == [
            (2, "hello ...", "superForum"),
            (3, "I don't ...", "HiBoard"),
        ]
        assert sorted_rows(forum_db.run("SELECT * FROM approved")) == [
            (1, 4),
            (2, 2),
            (2, 4),
            (3, 4),
        ]

    def test_q1_returns_all_messages(self, forum_db):
        result = forum_db.run(Q1)
        assert result.columns == ["mId", "text"]
        assert sorted_rows(result) == [
            (1, "lorem ipsum ..."),
            (2, "hello ..."),
            (3, "I don't ..."),
            (4, "hi there ..."),
        ]

    def test_q2_view_equals_q1(self, forum_db):
        assert sorted_rows(forum_db.run("SELECT * FROM v1")) == sorted_rows(
            forum_db.run(Q1)
        )

    def test_q3_counts_approvals_and_omits_unapproved(self, forum_db):
        result = forum_db.run(Q3)
        assert result.columns == ["count", "text"]
        # mId 1 has no approval and is omitted; mId 2 has one; mId 4 three.
        assert sorted_rows(result) == [(1, "hello ..."), (3, "hi there ...")]


class TestFigure2:
    """The provenance of q1, tuple for tuple."""

    PROV_Q1 = (
        "SELECT PROVENANCE mId, text FROM messages "
        "UNION SELECT mId, text FROM imports"
    )

    def test_schema_shape(self, forum_db):
        result = forum_db.run(self.PROV_Q1)
        assert result.columns == [
            "mId",
            "text",
            "prov_messages_mid",
            "prov_messages_text",
            "prov_messages_uid",
            "prov_imports_mid",
            "prov_imports_text",
            "prov_imports_origin",
        ]
        assert result.provenance_attrs == (
            "prov_messages_mid",
            "prov_messages_text",
            "prov_messages_uid",
            "prov_imports_mid",
            "prov_imports_text",
            "prov_imports_origin",
        )
        assert result.original_attrs == ["mId", "text"]

    def test_exact_tuples(self, forum_db):
        """The four tuples of Figure 2, with NULL padding per branch."""
        result = forum_db.run(self.PROV_Q1)
        assert sorted_rows(result) == [
            (1, "lorem ipsum ...", 1, "lorem ipsum ...", 3, None, None, None),
            (2, "hello ...", None, None, None, 2, "hello ...", "superForum"),
            (3, "I don't ...", None, None, None, 3, "I don't ...", "HiBoard"),
            (4, "hi there ...", 4, "hi there ...", 2, None, None, None),
        ]

    def test_same_under_joinback_strategy(self, forum_db):
        forum_db.options.union_strategy = "joinback"
        result = forum_db.run(self.PROV_Q1)
        assert sorted_rows(result) == [
            (1, "lorem ipsum ...", 1, "lorem ipsum ...", 3, None, None, None),
            (2, "hello ...", None, None, None, 2, "hello ...", "superForum"),
            (3, "I don't ...", None, None, None, 3, "I don't ...", "HiBoard"),
            (4, "hi there ...", 4, "hi there ...", 2, None, None, None),
        ]

    def test_same_under_cost_based_strategy(self, forum_db):
        forum_db.options.union_strategy = "cost"
        result = forum_db.run(self.PROV_Q1)
        assert len(result) == 4


class TestSection21ProvenanceSchema:
    """§2.1 prints the provenance schema of (the aggregation over) q1."""

    def test_aggregation_provenance_schema(self, forum_db):
        result = forum_db.run(SQLPLE_AGGREGATION)
        # The paper lists: (count, text, prov_messages_mId,
        # prov_messages_text, prov_messages_uId, prov_imports_mId,
        # prov_imports_text, prov_imports_origin) — our q3 variant also
        # accesses `approved`, whose attributes follow.
        assert result.columns[:8] == [
            "count",
            "text",
            "prov_messages_mid",
            "prov_messages_text",
            "prov_messages_uid",
            "prov_imports_mid",
            "prov_imports_text",
            "prov_imports_origin",
        ]
        assert result.columns[8:] == ["prov_approved_uid", "prov_approved_mid"]


class TestSection24Listings:
    def test_listing1_aggregation_provenance(self, forum_db):
        result = forum_db.run(SQLPLE_AGGREGATION)
        # "hi there" has three approvals -> three provenance tuples; each
        # carries the message witness and one approval witness.
        hi_there = [r for r in result.rows if r[1] == "hi there ..."]
        assert len(hi_there) == 3
        assert all(r[0] == 3 for r in hi_there)  # count(*) = 3
        assert all(r[2] == 4 and r[4] == 2 for r in hi_there)  # messages witness
        assert sorted(r[8] for r in hi_there) == [1, 2, 3]  # approving users
        # "hello" was imported: provenance from imports, not messages.
        hello = [r for r in result.rows if r[1] == "hello ..."]
        assert len(hello) == 1
        assert hello[0][2] is None and hello[0][5] == 2 and hello[0][7] == "superForum"

    def test_listing2_querying_provenance(self, forum_db):
        result = forum_db.run(SQLPLE_QUERYING_PROVENANCE)
        assert result.columns == ["text", "prov_imports_origin"]
        assert result.rows == [("hello ...", "superForum")]

    def test_listing3_baserelation(self, forum_db):
        result = forum_db.run(SQLPLE_BASERELATION)
        # v1 is treated like a base relation: its own tuples are the
        # provenance, renamed and attached — not the base tuples of
        # messages/imports.
        assert result.columns == ["text", "prov_v1_mid", "prov_v1_text"]
        assert sorted_rows(result) == [
            ("I don't ...", 3, "I don't ..."),
            ("hello ...", 2, "hello ..."),
            ("hi there ...", 4, "hi there ..."),
            ("lorem ipsum ...", 1, "lorem ipsum ..."),
        ]

    def test_listing3_baserelation_rows(self, forum_db):
        result = forum_db.run(SQLPLE_BASERELATION)
        # Every result tuple's provenance is exactly itself (the view
        # tuple), keyed by mId.
        by_text = {r[0]: r for r in result.rows}
        assert by_text["hello ..."][1] == 2
        assert by_text["lorem ipsum ..."][1] == 1
        assert all(r[0] == r[2] for r in result.rows)

    def test_all_paper_queries_parse_and_run(self, forum_db):
        for name, sql in FORUM_QUERIES.items():
            if name == "q2":
                continue  # the view already exists in the fixture
            forum_db.run(sql)
