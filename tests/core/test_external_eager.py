"""External provenance and eager (materialized) provenance tests —
the paper's §2.4 incremental provenance computation."""

from __future__ import annotations

import pytest

from repro import (
    connect,
    CatalogError,
    RewriteError,
    attach_external_provenance,
    detach_external_provenance,
    materialize_provenance,
    stored_provenance_attrs,
)


@pytest.fixture
def db():
    session = connect()
    session.run(
        """
        CREATE TABLE r (a int, b text);
        INSERT INTO r VALUES (1, 'x'), (2, 'y');
        """
    )
    return session


class TestExternalProvenance:
    def test_explicit_provenance_attrs_in_query(self, db):
        db.run(
            "CREATE TABLE annotated (v int, src text);"
            "INSERT INTO annotated VALUES (10, 'sensorA'), (20, 'sensorB')"
        )
        result = db.run(
            "SELECT PROVENANCE v FROM annotated PROVENANCE (src) WHERE v > 10"
        )
        # `src` is the provenance; it is not duplicated, just propagated.
        assert result.columns == ["v", "src"]
        assert result.provenance_attrs == ("src",)
        assert result.rows == [(20, "sensorB")]

    def test_external_attrs_flow_through_operators(self, db):
        db.run(
            "CREATE TABLE annotated (v int, src text);"
            "INSERT INTO annotated VALUES (10, 'sensorA'), (10, 'sensorB'), (20, 'sensorC')"
        )
        result = db.run(
            "SELECT PROVENANCE v, count(*) AS n FROM annotated PROVENANCE (src) GROUP BY v"
        )
        ten = sorted(row for row in result.rows if row[0] == 10)
        assert [row[2] for row in ten] == ["sensorA", "sensorB"]

    def test_registration_api(self, db):
        db.run(
            "CREATE TABLE imported (v int, who text);"
            "INSERT INTO imported VALUES (1, 'alice')"
        )
        attach_external_provenance(db, "imported", ["who"])
        assert stored_provenance_attrs(db, "imported") == ("who",)
        result = db.run("SELECT PROVENANCE v FROM imported")
        assert result.columns == ["v", "who"]
        assert result.provenance_attrs == ("who",)
        detach_external_provenance(db, "imported")
        result = db.run("SELECT PROVENANCE v FROM imported")
        assert result.columns == ["v", "prov_imported_v", "prov_imported_who"]

    def test_registration_validates_attribute(self, db):
        with pytest.raises(CatalogError, match="no attribute"):
            attach_external_provenance(db, "r", ["nope"])
        with pytest.raises(CatalogError, match="does not exist"):
            attach_external_provenance(db, "missing", ["a"])

    def test_unknown_provenance_attr_in_query(self, db):
        from repro import AnalyzeError, connect

        with pytest.raises(AnalyzeError, match="provenance attribute"):
            db.run("SELECT PROVENANCE a FROM r PROVENANCE (nope)")


class TestEagerProvenance:
    def test_create_table_as_registers_provenance(self, db):
        db.run("CREATE TABLE stored AS SELECT PROVENANCE a, b FROM r WHERE a = 1")
        assert db.catalog.provenance_attrs("stored") == ("prov_r_a", "prov_r_b")
        # Reuse: querying the stored provenance does not re-rewrite r.
        result = db.run("SELECT PROVENANCE a FROM stored")
        assert result.columns == ["a", "prov_r_a", "prov_r_b"]
        assert result.rows == [(1, 1, "x")]

    def test_materialize_api(self, db):
        materialize_provenance(db, "p", "SELECT PROVENANCE b FROM r")
        assert stored_provenance_attrs(db, "p") == ("prov_r_a", "prov_r_b")
        result = db.run("SELECT b, prov_r_a FROM p ORDER BY prov_r_a")
        assert result.rows == [("x", 1), ("y", 2)]

    def test_materialize_requires_provenance_query(self, db):
        with pytest.raises(RewriteError, match="SELECT PROVENANCE"):
            materialize_provenance(db, "p", "SELECT b FROM r")

    def test_provenance_view_registration(self, db):
        db.run("CREATE VIEW pv AS SELECT PROVENANCE a FROM r")
        assert db.catalog.provenance_attrs("pv") == ("prov_r_a", "prov_r_b")
        # Plain query over the view sees provenance columns as data.
        plain = db.run("SELECT * FROM pv")
        assert plain.columns == ["a", "prov_r_a", "prov_r_b"]
        # Provenance query over the view resumes from the stored columns.
        prov = db.run("SELECT PROVENANCE a FROM pv WHERE a = 2")
        assert prov.rows == [(2, 2, "y")]
        assert prov.provenance_attrs == ("prov_r_a", "prov_r_b")

    def test_eager_equals_lazy(self, db):
        lazy = db.run("SELECT PROVENANCE b, a FROM r")
        db.run("CREATE TABLE eager_p AS SELECT PROVENANCE b, a FROM r")
        eager = db.run("SELECT * FROM eager_p")
        assert sorted(lazy.rows) == sorted(eager.rows)

    def test_incremental_over_eager(self, db):
        """Provenance of a query over stored provenance: the stored
        witness columns flow through the new query's rewrite."""
        db.run("CREATE TABLE stage1 AS SELECT PROVENANCE a, b FROM r")
        result = db.run(
            "SELECT PROVENANCE upper(b) AS ub FROM stage1 WHERE a >= 1"
        )
        assert result.columns == ["ub", "prov_r_a", "prov_r_b"]
        assert sorted(result.rows) == [("X", 1, "x"), ("Y", 2, "y")]

    def test_create_table_from_relation_api(self, db):
        result = db.run("SELECT PROVENANCE a FROM r")
        db.create_table_from_relation("copy_p", result)
        assert db.catalog.provenance_attrs("copy_p") == result.provenance_attrs
