"""Provenance naming discipline tests (paper §2.1 naming scheme)."""

from __future__ import annotations

from repro.core.naming import ProvAttr, ProvNameGenerator, sanitize
from repro.datatypes import SQLType as T


class TestSanitize:
    def test_lowercases(self):
        assert sanitize("MId") == "mid"

    def test_strips_special_characters(self):
        assert sanitize("weird name!") == "weird_name"
        assert sanitize("a.b") == "a_b"

    def test_never_empty(self):
        assert sanitize("!!!") == "x"


class TestProvNameGenerator:
    def test_first_access_unnumbered(self):
        naming = ProvNameGenerator()
        assert naming.relation_prefix("messages") == "prov_messages"

    def test_repeated_accesses_numbered(self):
        naming = ProvNameGenerator()
        assert naming.relation_prefix("r") == "prov_r"
        assert naming.relation_prefix("r") == "prov_r_1"
        assert naming.relation_prefix("r") == "prov_r_2"
        assert naming.relation_prefix("s") == "prov_s"

    def test_numbering_is_case_insensitive(self):
        naming = ProvNameGenerator()
        naming.relation_prefix("R")
        assert naming.relation_prefix("r") == "prov_r_1"

    def test_attribute_names_unique(self):
        naming = ProvNameGenerator()
        prefix = naming.relation_prefix("t")
        first = naming.attribute_name(prefix, "a")
        second = naming.attribute_name(prefix, "a")
        assert first == "prov_t_a"
        assert second != first

    def test_claimed_names_avoided(self):
        naming = ProvNameGenerator()
        naming.claim("prov_t_a")
        prefix = naming.relation_prefix("t")
        assert naming.attribute_name(prefix, "a") != "prov_t_a"

    def test_prov_attr_fields(self):
        attr = ProvAttr("prov_t_a", "t", "a", T.INT, "prov_t")
        assert attr.name == "prov_t_a"
        assert attr.relation == "t" and attr.attribute == "a"
        assert attr.access == "prov_t"


class TestNamingEndToEnd:
    def test_paper_naming_scheme(self):
        """prov_<relation>_<attribute>, as §2.1 prescribes."""
        from repro import connect

        db = connect()
        db.run("CREATE TABLE orders (id int, total float)")
        result = db.run("SELECT PROVENANCE id FROM orders")
        assert list(result.provenance_attrs) == ["prov_orders_id", "prov_orders_total"]

    def test_three_way_self_join_numbering(self):
        from repro import connect

        db = connect()
        db.run("CREATE TABLE r (a int); INSERT INTO r VALUES (1)")
        result = db.run(
            "SELECT PROVENANCE x.a FROM r x, r y, r z "
            "WHERE x.a = y.a AND y.a = z.a"
        )
        assert list(result.provenance_attrs) == ["prov_r_a", "prov_r_1_a", "prov_r_2_a"]
        assert result.rows == [(1, 1, 1, 1)]

    def test_mixed_case_table_names_folded(self):
        from repro import connect

        db = connect()
        db.run('CREATE TABLE "MyTable" (a int)')
        result = db.run('SELECT PROVENANCE a FROM "MyTable"')
        assert list(result.provenance_attrs) == ["prov_mytable_a"]
