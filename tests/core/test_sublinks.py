"""Nested-subquery (sublink) provenance: GEN / LEFT / KEEP strategies."""

from __future__ import annotations

import pytest

from repro import RewriteError, RewriteOptions, connect


def make_db(**options):
    db = connect(RewriteOptions(**options)) if options else connect()
    db.run(
        """
        CREATE TABLE c (ck int, cname text);
        CREATE TABLE o (ok int, ock int, price int);
        INSERT INTO c VALUES (1, 'ann'), (2, 'bob'), (3, 'cat');
        INSERT INTO o VALUES (10, 1, 100), (11, 1, 300), (12, 2, 50);
        """
    )
    return db


def rows(relation):
    return sorted(relation.rows, key=repr)


class TestGenStrategy:
    def test_uncorrelated_in_collects_sublink_witnesses(self):
        db = make_db()
        result = db.run(
            "SELECT PROVENANCE cname FROM c WHERE ck IN (SELECT ock FROM o WHERE price > 60)"
        )
        # Only ann qualifies (orders 10 and 11 have price > 60) — and she
        # has one provenance row per matching order.
        assert result.columns == [
            "cname", "prov_c_ck", "prov_c_cname", "prov_o_ok", "prov_o_ock", "prov_o_price",
        ]
        assert rows(result) == [
            ("ann", 1, "ann", 10, 1, 100),
            ("ann", 1, "ann", 11, 1, 300),
        ]

    def test_uncorrelated_exists_cross_collects_all(self):
        db = make_db()
        result = db.run(
            "SELECT PROVENANCE cname FROM c WHERE ck = 1 AND EXISTS (SELECT 1 FROM o WHERE price > 250)"
        )
        assert rows(result) == [("ann", 1, "ann", 11, 1, 300)]

    def test_uncorrelated_exists_empty_sublink_filters_all(self):
        db = make_db()
        result = db.run(
            "SELECT PROVENANCE cname FROM c WHERE EXISTS (SELECT 1 FROM o WHERE price > 999)"
        )
        assert result.rows == []

    def test_original_semantics_preserved(self):
        db = make_db()
        plain = db.run(
            "SELECT cname FROM c WHERE ck IN (SELECT ock FROM o)"
        )
        prov = db.run(
            "SELECT PROVENANCE cname FROM c WHERE ck IN (SELECT ock FROM o)"
        )
        assert {r[0] for r in plain.rows} == {r[0] for r in prov.rows}


class TestLeftStrategy:
    def test_correlated_exists_traced(self):
        db = make_db()
        result = db.run(
            "SELECT PROVENANCE cname FROM c WHERE EXISTS "
            "(SELECT 1 FROM o WHERE o.ock = c.ck AND o.price >= 100)"
        )
        assert rows(result) == [
            ("ann", 1, "ann", 10, 1, 100),
            ("ann", 1, "ann", 11, 1, 300),
        ]

    def test_correlated_in_traced(self):
        db = make_db()
        result = db.run(
            "SELECT PROVENANCE cname FROM c WHERE ck IN "
            "(SELECT ock FROM o WHERE o.ock = c.ck AND price < 200)"
        )
        assert rows(result) == [
            ("ann", 1, "ann", 10, 1, 100),
            ("bob", 2, "bob", 12, 2, 50),
        ]

    def test_correlation_under_aggregate_falls_back_to_keep(self):
        db = make_db()
        result = db.run(
            "SELECT PROVENANCE cname FROM c WHERE EXISTS "
            "(SELECT count(*) FROM o WHERE o.ock = c.ck GROUP BY ock HAVING count(*) > 1)"
        )
        # KEEP fallback: the filter applies but no o-provenance appears.
        assert result.columns == ["cname", "prov_c_ck", "prov_c_cname"]
        assert rows(result) == [("ann", 1, "ann")]


class TestKeepFallback:
    def test_negated_sublinks_keep(self):
        db = make_db()
        result = db.run(
            "SELECT PROVENANCE cname FROM c WHERE ck NOT IN (SELECT ock FROM o)"
        )
        assert result.columns == ["cname", "prov_c_ck", "prov_c_cname"]
        assert rows(result) == [("cat", 3, "cat")]

    def test_scalar_sublinks_keep(self):
        db = make_db()
        result = db.run(
            "SELECT PROVENANCE cname FROM c WHERE ck = (SELECT min(ock) FROM o)"
        )
        assert result.columns == ["cname", "prov_c_ck", "prov_c_cname"]
        assert result.rows == [("ann", 1, "ann")]  # min(ock) = 1

    def test_forced_keep_strategy(self):
        db = make_db(sublink_strategy="keep")
        result = db.run(
            "SELECT PROVENANCE cname FROM c WHERE ck IN (SELECT ock FROM o)"
        )
        assert result.columns == ["cname", "prov_c_ck", "prov_c_cname"]
        assert len(result) == 2  # ann, bob — no replication

    def test_forced_gen_keeps_correlated_sublinks(self):
        db = make_db(sublink_strategy="gen")
        result = db.run(
            "SELECT PROVENANCE cname FROM c WHERE EXISTS "
            "(SELECT 1 FROM o WHERE o.ock = c.ck)"
        )
        # GEN cannot decorrelate: sublink stays opaque.
        assert result.columns == ["cname", "prov_c_ck", "prov_c_cname"]

    def test_forced_left_keeps_uncorrelated_sublinks(self):
        db = make_db(sublink_strategy="left")
        result = db.run(
            "SELECT PROVENANCE cname FROM c WHERE ck IN (SELECT ock FROM o)"
        )
        assert result.columns == ["cname", "prov_c_ck", "prov_c_cname"]


class TestStrategyEquivalence:
    """All strategies must agree on the original result columns."""

    QUERIES = [
        "SELECT PROVENANCE cname FROM c WHERE ck IN (SELECT ock FROM o)",
        "SELECT PROVENANCE cname FROM c WHERE EXISTS (SELECT 1 FROM o WHERE o.ock = c.ck)",
        "SELECT PROVENANCE cname FROM c WHERE ck IN (SELECT ock FROM o WHERE price > 60)",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    @pytest.mark.parametrize("strategy", ["heuristic", "cost", "keep"])
    def test_original_rows_stable_across_strategies(self, sql, strategy):
        db = make_db(sublink_strategy=strategy)
        result = db.run(sql)
        names = {row[0] for row in result.rows}
        baseline = make_db().run(sql.replace("PROVENANCE ", ""))
        assert names == {row[0] for row in baseline.rows}


class TestSublinkInProvenanceSubquery:
    def test_sublink_inside_derived_table(self):
        db = make_db()
        result = db.run(
            "SELECT cname, prov_o_ok FROM "
            "(SELECT PROVENANCE cname FROM c WHERE ck IN (SELECT ock FROM o)) AS p "
            "WHERE prov_o_ok > 10"
        )
        assert rows(result) == [("ann", 11), ("bob", 12)]
