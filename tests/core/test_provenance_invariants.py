"""Property-based tests of the central provenance invariants.

For randomly generated databases and a family of query shapes, under
influence semantics:

1. **Result preservation** — projecting the provenance result onto the
   original attributes and deduplicating yields exactly the original
   query result (as a set; the provenance representation replicates
   originals per witness).
2. **Witness soundness** — every non-NULL provenance tuple fragment is
   an actual tuple of its base relation.
3. **Sufficiency (monotone queries)** — re-running the query on only the
   witness tuples still produces every original result tuple.
4. **Strategy agreement** — pad and join-back union strategies produce
   the same provenance relation.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RewriteOptions, connect

# -- database generation -----------------------------------------------------

_small_int = st.integers(min_value=0, max_value=4)
_label = st.sampled_from(["a", "b", "c"])

_r_rows = st.lists(
    st.tuples(_small_int | st.none(), _label), min_size=0, max_size=8
)
_s_rows = st.lists(
    st.tuples(_small_int | st.none(), _label), min_size=0, max_size=8
)


def build_db(r_rows, s_rows) -> Connection:
    db = connect()
    db.run("CREATE TABLE r (k int, v text); CREATE TABLE s (k int, v text)")
    db.load_rows("r", r_rows)
    db.load_rows("s", s_rows)
    return db


# Monotone query shapes exercising distinct rewrite rules.
MONOTONE_QUERIES = [
    "SELECT {} k, v FROM r WHERE k >= 1",
    "SELECT {} v FROM r",
    "SELECT {} r.k, s.v FROM r JOIN s ON r.k = s.k",
    "SELECT {} k, v FROM r UNION SELECT k, v FROM s",
    "SELECT {} k, v FROM r UNION ALL SELECT k, v FROM s",
    "SELECT {} DISTINCT v FROM r",
    "SELECT {} k FROM r WHERE k IN (SELECT k FROM s)",
]

# Queries whose originals are preserved but which are not monotone
# (sufficiency does not apply to aggregates / difference).
NON_MONOTONE_QUERIES = [
    "SELECT {} v, count(*) AS n FROM r GROUP BY v",
    "SELECT {} count(*) AS n FROM r",
    "SELECT {} k, v FROM r EXCEPT SELECT k, v FROM s",
    "SELECT {} k, v FROM r INTERSECT SELECT k, v FROM s",
]

ALL_QUERIES = MONOTONE_QUERIES + NON_MONOTONE_QUERIES


@st.composite
def db_and_query(draw, queries=ALL_QUERIES):
    r_rows = draw(_r_rows)
    s_rows = draw(_s_rows)
    template = draw(st.sampled_from(queries))
    return r_rows, s_rows, template


def split_result(relation):
    """(original fragments, witness fragments by relation) per row."""
    width = len(relation.original_attrs)
    return width


@given(case=db_and_query())
@settings(max_examples=60, deadline=None)
def test_result_preservation(case):
    r_rows, s_rows, template = case
    db = build_db(r_rows, s_rows)
    original = db.run(template.format(""))
    prov = db.run(template.format("PROVENANCE"))
    width = len(original.columns)
    assert prov.original_attrs == original.columns
    assert {tuple(row[:width]) for row in prov.rows} == set(original.rows)


@given(case=db_and_query())
@settings(max_examples=60, deadline=None)
def test_witness_soundness(case):
    r_rows, s_rows, template = case
    db = build_db(r_rows, s_rows)
    prov = db.run(template.format("PROVENANCE"))
    base = {"r": set(map(tuple, r_rows)), "s": set(map(tuple, s_rows))}
    # Group provenance columns by relation: prov_r_* and prov_s_*.
    positions: dict[str, list[int]] = {"r": [], "s": []}
    for index, name in enumerate(prov.columns):
        if name.startswith("prov_r"):
            positions["r"].append(index)
        elif name.startswith("prov_s"):
            positions["s"].append(index)
    # Accesses may repeat (prov_r_1_*): chunk into pairs (k, v).
    for row in prov.rows:
        for relation, cols in positions.items():
            for start in range(0, len(cols), 2):
                fragment = tuple(row[c] for c in cols[start : start + 2])
                if all(value is None for value in fragment):
                    continue  # padded branch / outer-join padding
                assert fragment in base[relation], (
                    f"witness {fragment} not in base relation {relation}"
                )


@given(case=db_and_query(queries=MONOTONE_QUERIES))
@settings(max_examples=60, deadline=None)
def test_witness_sufficiency_for_monotone_queries(case):
    r_rows, s_rows, template = case
    db = build_db(r_rows, s_rows)
    original = db.run(template.format(""))
    prov = db.run(template.format("PROVENANCE"))

    positions: dict[str, list[int]] = {"r": [], "s": []}
    for index, name in enumerate(prov.columns):
        if name.startswith("prov_r"):
            positions["r"].append(index)
        elif name.startswith("prov_s"):
            positions["s"].append(index)

    witnesses: dict[str, set] = {"r": set(), "s": set()}
    for row in prov.rows:
        for relation, cols in positions.items():
            for start in range(0, len(cols), 2):
                fragment = tuple(row[c] for c in cols[start : start + 2])
                if not all(value is None for value in fragment):
                    witnesses[relation].add(fragment)

    replay = build_db(sorted(witnesses["r"], key=repr), sorted(witnesses["s"], key=repr))
    replayed = replay.run(template.format(""))
    assert set(original.rows) <= set(replayed.rows)


@given(case=db_and_query(queries=["SELECT {} k, v FROM r UNION SELECT k, v FROM s"]))
@settings(max_examples=40, deadline=None)
def test_union_strategies_agree(case):
    r_rows, s_rows, template = case
    pad_db = build_db(r_rows, s_rows)
    joinback_db = connect(RewriteOptions(union_strategy="joinback"))
    joinback_db.run("CREATE TABLE r (k int, v text); CREATE TABLE s (k int, v text)")
    joinback_db.load_rows("r", r_rows)
    joinback_db.load_rows("s", s_rows)

    pad = pad_db.run(template.format("PROVENANCE"))
    joinback = joinback_db.run(template.format("PROVENANCE"))
    assert pad.columns == joinback.columns
    assert sorted(pad.rows, key=repr) == sorted(joinback.rows, key=repr)


@given(case=db_and_query())
@settings(max_examples=30, deadline=None)
def test_copy_provenance_values_match_result_values(case):
    """Under COPY PARTIAL, any non-NULL provenance cell equals the value
    of some original output column of its row (it was copied there)."""
    r_rows, s_rows, template = case
    db = build_db(r_rows, s_rows)
    prov = db.run(template.format("PROVENANCE ON CONTRIBUTION (COPY PARTIAL)"))
    width = len(prov.original_attrs)
    for row in prov.rows:
        originals = set(row[:width])
        for value in row[width:]:
            if value is not None:
                assert value in originals
