"""Copy contribution semantics (C-CS / where-provenance) tests:
PARTIAL vs COMPLETE, masking through operators, comparison to INFLUENCE."""

from __future__ import annotations

import pytest

from repro import connect


@pytest.fixture
def db():
    session = connect()
    session.run(
        """
        CREATE TABLE r (a int, b text, c int);
        CREATE TABLE s (x int, y text);
        INSERT INTO r VALUES (1, 'p', 10), (2, 'q', 20);
        INSERT INTO s VALUES (1, 'one'), (2, 'two');
        """
    )
    return session


def rows(relation):
    return sorted(relation.rows, key=repr)


class TestCopyPartial:
    def test_only_copied_attributes_carry_values(self, db):
        result = db.run("SELECT PROVENANCE ON CONTRIBUTION (COPY PARTIAL) a FROM r")
        assert result.columns == ["a", "prov_r_a", "prov_r_b", "prov_r_c"]
        for row in result.rows:
            assert row[1] == row[0]  # a was copied
            assert row[2] is None and row[3] is None  # b, c were not

    def test_computed_columns_copy_nothing(self, db):
        result = db.run(
            "SELECT PROVENANCE ON CONTRIBUTION (COPY PARTIAL) a + 1 AS a1 FROM r"
        )
        for row in result.rows:
            assert row[1] is None and row[2] is None and row[3] is None

    def test_filter_columns_are_not_copies(self, db):
        result = db.run(
            "SELECT PROVENANCE ON CONTRIBUTION (COPY PARTIAL) b FROM r WHERE a = 1"
        )
        assert result.rows == [("p", None, "p", None)]

    def test_join_copies_from_both_sides(self, db):
        result = db.run(
            "SELECT PROVENANCE ON CONTRIBUTION (COPY PARTIAL) b, y "
            "FROM r JOIN s ON r.a = s.x"
        )
        for row in result.rows:
            b, y, pa, pb, pc, px, py = row
            assert pb == b and py == y
            assert pa is None and pc is None and px is None

    def test_union_copies_per_branch(self, db):
        result = db.run(
            "SELECT PROVENANCE ON CONTRIBUTION (COPY PARTIAL) a FROM r "
            "UNION SELECT x FROM s"
        )
        for row in result.rows:
            value, pra, prb, prc, psx, psy = row
            assert (pra == value and psx is None) or (psx == value and pra is None)
            assert prb is None and prc is None and psy is None

    def test_group_key_is_a_copy_aggregate_is_not(self, db):
        db.run("INSERT INTO r VALUES (1, 'z', 30)")
        result = db.run(
            "SELECT PROVENANCE ON CONTRIBUTION (COPY PARTIAL) a, sum(c) AS total "
            "FROM r GROUP BY a"
        )
        for row in result.rows:
            a, total, pa, pb, pc = row
            assert pa == a  # group key copied
            assert pb is None and pc is None  # sum argument is not a copy


class TestCopyComplete:
    def test_whole_tuple_kept_when_any_attribute_copied(self, db):
        result = db.run("SELECT PROVENANCE ON CONTRIBUTION (COPY COMPLETE) a FROM r")
        assert rows(result) == [
            (1, 1, "p", 10),
            (2, 2, "q", 20),
        ]

    def test_no_copy_no_tuple(self, db):
        result = db.run(
            "SELECT PROVENANCE ON CONTRIBUTION (COPY COMPLETE) a + 1 AS a1 FROM r"
        )
        for row in result.rows:
            assert row[1] is None and row[2] is None and row[3] is None

    def test_complete_join_keeps_only_copied_side(self, db):
        result = db.run(
            "SELECT PROVENANCE ON CONTRIBUTION (COPY COMPLETE) b FROM r JOIN s ON r.a = s.x"
        )
        for row in result.rows:
            b, pa, pb, pc, px, py = row
            assert (pa, pb, pc) != (None, None, None)  # r side copied via b
            assert px is None and py is None  # s side never copied


class TestCopyVsInfluence:
    def test_same_schema_different_masking(self, db):
        influence = db.run("SELECT PROVENANCE a FROM r")
        copy = db.run("SELECT PROVENANCE ON CONTRIBUTION (COPY PARTIAL) a FROM r")
        assert influence.columns == copy.columns
        # Influence keeps full witnesses; copy masks non-copied attrs.
        assert all(row[2] is not None for row in influence.rows)
        assert all(row[2] is None for row in copy.rows)

    def test_original_rows_identical(self, db):
        sqls = [
            "SELECT {} b, a FROM r WHERE c >= 10",
            "SELECT {} a, count(*) FROM r GROUP BY a",
            "SELECT {} a FROM r UNION SELECT x FROM s",
        ]
        for template in sqls:
            plain = db.run(template.format(""))
            for clause in (
                "PROVENANCE",
                "PROVENANCE ON CONTRIBUTION (COPY PARTIAL)",
                "PROVENANCE ON CONTRIBUTION (COPY COMPLETE)",
            ):
                prov = db.run(template.format(clause))
                width = len(plain.columns)
                assert {tuple(row[:width]) for row in prov.rows} == set(plain.rows)

    def test_copy_through_intersect_and_except(self, db):
        result = db.run(
            "SELECT PROVENANCE ON CONTRIBUTION (COPY PARTIAL) a FROM r "
            "INTERSECT SELECT x FROM s"
        )
        assert len(result) == 2
        result = db.run(
            "SELECT PROVENANCE ON CONTRIBUTION (COPY PARTIAL) a FROM r "
            "EXCEPT SELECT x FROM s WHERE x = 2"
        )
        # Survivor is 1; under copy semantics the except right side
        # contributes nothing.
        assert all(row[4] is None and row[5] is None for row in result.rows)

    def test_baserelation_under_copy(self, db):
        db.run("CREATE VIEW v AS SELECT a, b FROM r")
        result = db.run(
            "SELECT PROVENANCE ON CONTRIBUTION (COPY PARTIAL) a FROM v BASERELATION"
        )
        assert result.columns == ["a", "prov_v_a", "prov_v_b"]
        for row in result.rows:
            assert row[1] == row[0] and row[2] is None
