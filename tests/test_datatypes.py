"""Value-model tests: three-valued logic laws, comparisons, casts and
arithmetic — partly property-based with hypothesis."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ExecutionError
from repro.datatypes import (
    SQLType,
    arith,
    cast_value,
    compare,
    distinct,
    eq,
    format_value,
    is_true,
    le,
    lt,
    ne,
    not_distinct,
    row_identity,
    sort_key,
    tvl_and,
    tvl_not,
    tvl_or,
    type_from_name,
    type_of_value,
    unify_types,
    value_identity,
)
from repro.errors import TypeCheckError

TVL = [True, False, None]


class TestThreeValuedLogic:
    @pytest.mark.parametrize("a", TVL)
    @pytest.mark.parametrize("b", TVL)
    def test_and_truth_table(self, a, b):
        expected = (
            False if (a is False or b is False) else None if None in (a, b) else True
        )
        assert tvl_and(a, b) == expected

    @pytest.mark.parametrize("a", TVL)
    @pytest.mark.parametrize("b", TVL)
    def test_or_truth_table(self, a, b):
        expected = (
            True if (a is True or b is True) else None if None in (a, b) else False
        )
        assert tvl_or(a, b) == expected

    def test_not(self):
        assert tvl_not(True) is False
        assert tvl_not(False) is True
        assert tvl_not(None) is None

    @pytest.mark.parametrize("a", TVL)
    @pytest.mark.parametrize("b", TVL)
    def test_de_morgan(self, a, b):
        assert tvl_not(tvl_and(a, b)) == tvl_or(tvl_not(a), tvl_not(b))
        assert tvl_not(tvl_or(a, b)) == tvl_and(tvl_not(a), tvl_not(b))

    def test_is_true_only_for_true(self):
        assert is_true(True)
        assert not is_true(False)
        assert not is_true(None)


class TestComparisons:
    def test_null_propagates(self):
        for op in (eq, ne, lt, le):
            assert op(None, 1) is None
            assert op(1, None) is None

    def test_numeric_cross_type(self):
        assert eq(1, 1.0) is True
        assert lt(1, 1.5) is True

    def test_string_comparison(self):
        assert lt("abc", "abd") is True

    def test_incomparable_types_raise(self):
        with pytest.raises(ExecutionError):
            compare(1, "a")
        with pytest.raises(ExecutionError):
            compare(True, 1)

    def test_not_distinct_null_safe(self):
        assert not_distinct(None, None) is True
        assert not_distinct(None, 1) is False
        assert not_distinct(2, 2) is True
        assert distinct(None, None) is False

    @given(st.one_of(st.none(), st.integers(), st.text(max_size=5)))
    def test_not_distinct_reflexive(self, v):
        assert not_distinct(v, v) is True


class TestTypes:
    def test_type_of_value(self):
        assert type_of_value(1) is SQLType.INT
        assert type_of_value(1.0) is SQLType.FLOAT
        assert type_of_value(True) is SQLType.BOOL  # bool before int
        assert type_of_value("x") is SQLType.TEXT
        assert type_of_value(None) is SQLType.NULL

    def test_type_from_name_aliases(self):
        assert type_from_name("INTEGER") is SQLType.INT
        assert type_from_name("double precision") is SQLType.FLOAT
        assert type_from_name("varchar") is SQLType.TEXT
        with pytest.raises(TypeCheckError):
            type_from_name("blob")

    def test_unify(self):
        assert unify_types(SQLType.INT, SQLType.FLOAT) is SQLType.FLOAT
        assert unify_types(SQLType.NULL, SQLType.TEXT) is SQLType.TEXT
        with pytest.raises(TypeCheckError):
            unify_types(SQLType.INT, SQLType.TEXT)


class TestCasts:
    def test_null_casts_to_null(self):
        for target in SQLType:
            assert cast_value(None, target) is None

    def test_text_to_int(self):
        assert cast_value(" 42 ", SQLType.INT) == 42
        with pytest.raises(ExecutionError):
            cast_value("4.5x", SQLType.INT)

    def test_bool_casts(self):
        assert cast_value("yes", SQLType.BOOL) is True
        assert cast_value("f", SQLType.BOOL) is False
        assert cast_value(0, SQLType.BOOL) is False
        assert cast_value(True, SQLType.TEXT) == "true"

    def test_float_to_text(self):
        assert cast_value(1.0, SQLType.TEXT) == "1.0"


class TestArithmetic:
    def test_null_propagation(self):
        for op in ("+", "-", "*", "/", "%", "||"):
            assert arith(op, None, 1 if op != "||" else "a") is None

    def test_integer_division_truncates_toward_zero(self):
        assert arith("/", 7, 2) == 3
        assert arith("/", -7, 2) == -3
        assert arith("/", 7, -2) == -3

    def test_float_division(self):
        assert arith("/", 7.0, 2) == 3.5

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError, match="division by zero"):
            arith("/", 1, 0)
        with pytest.raises(ExecutionError, match="division by zero"):
            arith("%", 1, 0)

    def test_modulo_sign_follows_dividend(self):
        assert arith("%", 7, 3) == 1
        assert arith("%", -7, 3) == -1
        assert arith("%", 7, -3) == 1

    def test_concat(self):
        assert arith("||", "a", "b") == "ab"
        with pytest.raises(ExecutionError):
            arith("||", 1, "b")

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_int_addition_matches_python(self, a, b):
        assert arith("+", a, b) == a + b

    @given(st.integers(-1000, 1000), st.integers(1, 1000))
    def test_divmod_identity(self, a, b):
        quotient = arith("/", a, b)
        remainder = arith("%", a, b)
        assert quotient * b + remainder == a


class TestIdentityAndSorting:
    def test_value_identity_distinguishes_bool_from_int(self):
        assert value_identity(True) != value_identity(1)
        assert value_identity(1) == value_identity(1.0)

    def test_row_identity(self):
        assert row_identity((1, "a")) == row_identity((1.0, "a"))
        assert row_identity((True,)) != row_identity((1,))

    def test_sort_key_nulls_last_by_default(self):
        values = [3, None, 1]
        ordered = sorted(values, key=sort_key)
        assert ordered == [1, 3, None]

    def test_sort_key_nulls_first(self):
        values = [3, None, 1]
        ordered = sorted(values, key=lambda v: sort_key(v, nulls_first=True))
        assert ordered == [None, 1, 3]

    def test_format_value(self):
        assert format_value(None) == "null"
        assert format_value(True) == "t"
        assert format_value(2.0) == "2.0"
        assert format_value("x") == "x"
