"""Regression tests for the optimizer driver's pass accounting.

``Optimizer._rule_fixpoint`` is bounded by ``_MAX_PASSES`` as a safety
net. Hitting the bound used to be silent — the driver returned a
possibly non-converged tree and nobody could tell. It now warns and is
visible in the pipeline counters.
"""

from __future__ import annotations

import warnings

import pytest

from repro import PipelineCounters, connect
from repro.algebra import expressions as ax
from repro.algebra import nodes as an
from repro.optimizer import Optimizer
from repro.optimizer.optimizer import _MAX_PASSES


def _oscillating_rule():
    """A rule that keeps renaming a projection's outputs, but settles
    within each node visit (fires on every other inspection) — so each
    pass changes the tree and the fixpoint can never converge."""
    state = {"calls": 0}

    def oscillate(node):
        if isinstance(node, an.Project):
            state["calls"] += 1
            if state["calls"] % 2:
                return an.Project(
                    node.child, [(name + "_", expr) for name, expr in node.items]
                )
        return None

    return oscillate


@pytest.fixture
def db():
    conn = connect()
    conn.run("CREATE TABLE t (a int)")
    conn.run("INSERT INTO t VALUES (1), (2)")
    return conn


def _project_over_scan(db):
    scan = an.Scan("t", "t", db.catalog.table("t").schema)
    return an.Project(scan, [("a", ax.Column("t.a"))])


def test_non_converging_rule_list_warns_and_counts(db):
    counters = PipelineCounters()
    optimizer = Optimizer(
        db.catalog, rules=[_oscillating_rule()], mode="rules", counters=counters
    )
    with pytest.warns(RuntimeWarning, match="did not converge"):
        result = optimizer.optimize(_project_over_scan(db))
    assert counters.optimize_bound_hits == 1
    assert counters.optimize_passes == _MAX_PASSES
    # The tree is still returned (usable, just not fully simplified).
    assert isinstance(result, an.Project)


def test_converging_rules_do_not_warn(db):
    counters = PipelineCounters()
    optimizer = Optimizer(db.catalog, counters=counters)
    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        optimizer.optimize(_project_over_scan(db))
    assert counters.optimize_bound_hits == 0
    assert counters.optimize_passes >= 1


def test_pipeline_counters_expose_passes(db):
    before = db.counters.snapshot()
    db.execute("SELECT a FROM t WHERE 1 = 1 AND a > 0").fetchall()
    assert db.counters.optimize_passes > before.optimize_passes
    assert db.counters.optimize_bound_hits == 0


def test_unknown_mode_rejected(db):
    with pytest.raises(ValueError, match="unknown optimizer mode"):
        Optimizer(db.catalog, mode="galactic")
