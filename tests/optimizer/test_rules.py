"""Unit tests for individual optimizer rules and the cost model."""

from __future__ import annotations

import pytest

from repro import connect
from repro.algebra import expressions as ax
from repro.algebra import nodes as an
from repro.algebra.tree import walk_tree
from repro.analyzer import Analyzer
from repro.datatypes import SQLType as T
from repro.optimizer import CostModel, Optimizer
from repro.optimizer.rules import (
    fold_constants,
    rule_collapse_projects,
    rule_merge_selects,
    rule_remove_trivial_select,
    rule_select_into_join,
    rule_select_through_union,
)
from repro.sql import ast, parse_statement


@pytest.fixture
def db():
    session = connect()
    session.run(
        """
        CREATE TABLE t (a int, b text);
        CREATE TABLE s (x int, y text);
        INSERT INTO t VALUES (1, 'p'), (2, 'q'), (3, 'p');
        INSERT INTO s VALUES (1, 'one'), (3, 'three');
        """
    )
    return session


def analyzed(db, sql):
    statement = parse_statement(sql)
    assert isinstance(statement, ast.QueryStatement)
    return Analyzer(db.catalog).analyze_query(statement.query)


class TestConstantFolding:
    def test_arithmetic_folds(self):
        expr = ax.BinOp("+", ax.Const.of(1), ax.BinOp("*", ax.Const.of(2), ax.Const.of(3)))
        assert fold_constants(expr) == ax.Const.of(7)

    def test_comparison_folds(self):
        assert fold_constants(ax.BinOp("<", ax.Const.of(1), ax.Const.of(2))) == ax.Const(
            True, T.BOOL
        )

    def test_boolean_shortcuts(self):
        column = ax.Column("c")
        assert fold_constants(ax.BinOp("and", ax.Const(True, T.BOOL), column)) == column
        assert fold_constants(ax.BinOp("and", ax.Const(False, T.BOOL), column)) == ax.Const(
            False, T.BOOL
        )
        assert fold_constants(ax.BinOp("or", ax.Const(False, T.BOOL), column)) == column

    def test_division_by_zero_not_folded(self):
        expr = ax.BinOp("/", ax.Const.of(1), ax.Const.of(0))
        assert fold_constants(expr) == expr

    def test_null_logic_folds(self):
        expr = ax.BinOp("and", ax.Const.of(None), ax.Const(False, T.BOOL))
        assert fold_constants(expr) == ax.Const(False, T.BOOL)

    def test_is_null_on_constant(self):
        assert fold_constants(ax.IsNullTest(ax.Const.of(None))) == ax.Const(True, T.BOOL)

    def test_identity_preserved_when_unchanged(self):
        expr = ax.BinOp("=", ax.Column("a"), ax.Column("b"))
        assert fold_constants(expr) is expr


class TestRules:
    def test_remove_trivial_select(self, db):
        scan = an.Scan("t", "t", db.catalog.table("t").schema)
        node = an.Select(scan, ax.Const(True, T.BOOL))
        assert rule_remove_trivial_select(node) is scan

    def test_merge_selects(self, db):
        scan = an.Scan("t", "t", db.catalog.table("t").schema)
        inner = an.Select(scan, ax.BinOp(">", ax.Column("t.a"), ax.Const.of(1)))
        outer = an.Select(inner, ax.BinOp("<", ax.Column("t.a"), ax.Const.of(3)))
        merged = rule_merge_selects(outer)
        assert isinstance(merged, an.Select)
        assert isinstance(merged.child, an.Scan)
        assert isinstance(merged.condition, ax.BinOp) and merged.condition.op == "and"

    def test_select_into_join_creates_inner_join(self, db):
        node = analyzed(db, "SELECT t.a FROM t, s WHERE t.a = s.x AND t.a > 1")
        optimized = Optimizer(db.catalog).optimize(node)
        joins = [n for n in walk_tree(optimized) if isinstance(n, an.Join)]
        assert joins and joins[0].kind == "inner"
        assert joins[0].condition is not None

    def test_no_pushdown_into_nullable_side_of_outer_join(self, db):
        # The filter on the right side of a LEFT JOIN must stay above.
        node = analyzed(db, "SELECT t.a FROM t LEFT JOIN s ON t.a = s.x WHERE s.y = 'one'")
        before = db.run_query_node(node)
        after = db.run_query_node(Optimizer(db.catalog).optimize(node))
        assert sorted(before.rows) == sorted(after.rows) == [(1,)]

    def test_pushdown_into_preserved_side_of_outer_join(self, db):
        # Duplicate an s.x value so the join survives: with s.x unique the
        # cost stage would (correctly) eliminate this redundant left join
        # outright, hiding the pushdown this test is about.
        db.run("INSERT INTO s VALUES (1, 'again')")
        node = analyzed(db, "SELECT t.a FROM t LEFT JOIN s ON t.a = s.x WHERE t.a > 1")
        optimized = Optimizer(db.catalog).optimize(node)
        join = next(n for n in walk_tree(optimized) if isinstance(n, an.Join))
        # The filter moved below the join's left input.
        assert any(isinstance(n, an.Select) for n in walk_tree(join.left))

    def test_select_through_union(self, db):
        node = analyzed(db, "SELECT * FROM (SELECT a FROM t UNION SELECT x FROM s) u WHERE a > 1")
        optimized = Optimizer(db.catalog).optimize(node)
        union = next(n for n in walk_tree(optimized) if isinstance(n, an.SetOpNode))
        assert all(
            any(isinstance(n, an.Select) for n in walk_tree(side))
            for side in (union.left, union.right)
        )

    def test_collapse_projects(self, db):
        scan = an.Scan("t", "t", db.catalog.table("t").schema)
        inner = an.Project(scan, [("a", ax.Column("t.a")), ("b", ax.Column("t.b"))])
        outer = an.Project(inner, [("a2", ax.Column("a"))])
        collapsed = rule_collapse_projects(outer)
        assert isinstance(collapsed, an.Project)
        assert collapsed.child is scan

    def test_collapse_does_not_duplicate_computed_items(self, db):
        scan = an.Scan("t", "t", db.catalog.table("t").schema)
        inner = an.Project(scan, [("n", ax.BinOp("+", ax.Column("t.a"), ax.Const.of(1)))])
        outer = an.Project(inner, [("m", ax.BinOp("*", ax.Column("n"), ax.Column("n")))])
        assert rule_collapse_projects(outer) is None


class TestOptimizerEndToEnd:
    QUERIES = [
        "SELECT a FROM t WHERE a > 1 AND b = 'p'",
        "SELECT t.a, s.y FROM t, s WHERE t.a = s.x",
        "SELECT t.a FROM t LEFT JOIN s ON t.a = s.x WHERE s.y IS NULL",
        "SELECT b, count(*) FROM t WHERE a >= 1 GROUP BY b HAVING count(*) >= 1",
        "SELECT a FROM t UNION SELECT x FROM s",
        "SELECT a FROM t WHERE a IN (SELECT x FROM s) AND 1 = 1",
        "SELECT DISTINCT b FROM t WHERE a + 0 > 0",
        "SELECT a FROM t ORDER BY a DESC LIMIT 2",
        "SELECT PROVENANCE b, count(*) FROM t GROUP BY b",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_optimization_preserves_results(self, db, sql):
        statement = parse_statement(sql)
        analyzer = Analyzer(db.catalog)
        node = analyzer.analyze_query(statement.query)
        expanded = db.rewriter.expand(node)
        unoptimized = db.planner.plan(expanded.node)
        from repro.executor import execute_plan

        baseline = execute_plan(unoptimized)
        optimized = db.run_query_node(Optimizer(db.catalog).optimize(expanded.node))
        assert sorted(baseline.rows, key=repr) == sorted(optimized.rows, key=repr)

    def test_optimizer_reaches_fixpoint(self, db):
        node = analyzed(db, "SELECT a FROM t WHERE 1 = 1 AND a > 0")
        optimizer = Optimizer(db.catalog)
        once = optimizer.optimize(node)
        twice = optimizer.optimize(once)
        assert [type(n).__name__ for n in walk_tree(once)] == [
            type(n).__name__ for n in walk_tree(twice)
        ]


class TestCostModel:
    def test_scan_cardinality_from_stats(self, db):
        model = CostModel(db.catalog)
        node = analyzed(db, "SELECT a FROM t")
        assert model.rows(node) == pytest.approx(3.0)

    def test_filter_reduces_estimate(self, db):
        model = CostModel(db.catalog)
        full = analyzed(db, "SELECT a FROM t")
        filtered = analyzed(db, "SELECT a FROM t WHERE b = 'p'")
        assert model.rows(filtered) < model.rows(full)

    def test_join_cost_exceeds_inputs(self, db):
        model = CostModel(db.catalog)
        join = analyzed(db, "SELECT t.a FROM t JOIN s ON t.a = s.x")
        single = analyzed(db, "SELECT a FROM t")
        assert model.cost(join) > model.cost(single)

    def test_cheapest_picks_minimum(self, db):
        model = CostModel(db.catalog)
        small = analyzed(db, "SELECT a FROM t LIMIT 1")
        big = analyzed(db, "SELECT t.a FROM t, s")
        best, cost = model.cheapest([big, small])
        assert best is small and cost == model.cost(small)

    def test_nested_loop_costlier_than_hash_at_scale(self, db):
        # The quadratic nested-loop term must dominate once inputs are
        # large (on 3-row tables a nested loop is genuinely cheaper).
        db.run("INSERT INTO t SELECT a + 100, b FROM t")
        for _ in range(6):
            db.run("INSERT INTO t SELECT a + 1000, b FROM t")
            db.run("INSERT INTO s SELECT x + 1000, y FROM s")
        model = CostModel(db.catalog)
        equi = analyzed(db, "SELECT t.a FROM t JOIN s ON t.a = s.x")
        non_equi = analyzed(db, "SELECT t.a FROM t JOIN s ON t.a < s.x")
        assert model.cost(non_equi) > model.cost(equi)
