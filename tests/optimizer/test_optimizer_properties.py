"""Property-based optimizer correctness: for random data and a family of
query shapes (with and without provenance), the optimized plan must
return exactly the rows of the unoptimized plan."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import connect
from repro.executor import execute_plan
from repro.sql import ast, parse_statement

_value = st.integers(min_value=0, max_value=3) | st.none()
_text = st.sampled_from(["x", "y", "z"]) | st.none()
_r_rows = st.lists(st.tuples(_value, _text), min_size=0, max_size=7)
_s_rows = st.lists(st.tuples(_value, _text), min_size=0, max_size=7)

QUERY_SHAPES = [
    "SELECT a, v FROM r WHERE a > 0 AND v = 'x'",
    "SELECT r.a, s.v FROM r, s WHERE r.a = s.a",
    "SELECT r.a FROM r LEFT JOIN s ON r.a = s.a WHERE r.a >= 1",
    "SELECT r.a FROM r LEFT JOIN s ON r.a = s.a WHERE s.v = 'x'",
    "SELECT v, count(*) AS n FROM r GROUP BY v HAVING count(*) >= 1",
    "SELECT * FROM (SELECT a, v FROM r UNION SELECT a, v FROM s) u WHERE a = 1",
    "SELECT DISTINCT v FROM r WHERE a + 0 >= 0 OR v IS NULL",
    "SELECT a FROM r WHERE a IN (SELECT a FROM s) AND 2 > 1",
    "SELECT a FROM r WHERE EXISTS (SELECT 1 FROM s WHERE s.a = r.a)",
    "SELECT a, v FROM r ORDER BY a DESC LIMIT 3",
    "SELECT PROVENANCE a FROM r WHERE v = 'x'",
    "SELECT PROVENANCE v, count(*) AS n FROM r GROUP BY v",
    "SELECT PROVENANCE a, v FROM r UNION SELECT a, v FROM s",
]


@given(
    r_rows=_r_rows,
    s_rows=_s_rows,
    shape=st.sampled_from(QUERY_SHAPES),
)
@settings(max_examples=120, deadline=None)
def test_optimizer_preserves_query_results(r_rows, s_rows, shape):
    db = connect()
    db.run("CREATE TABLE r (a int, v text); CREATE TABLE s (a int, v text)")
    db.load_rows("r", r_rows)
    db.load_rows("s", s_rows)

    statement = parse_statement(shape)
    assert isinstance(statement, ast.QueryStatement)
    analyzer = db._analyzer()
    node = analyzer.analyze_query(statement.query)
    expanded = db.rewriter.expand(node)

    unoptimized = execute_plan(db.planner.plan(expanded.node))
    optimized = execute_plan(db.planner.plan(db.optimizer.optimize(expanded.node)))

    assert unoptimized.schema.names == optimized.schema.names
    assert sorted(unoptimized.rows, key=repr) == sorted(optimized.rows, key=repr)
