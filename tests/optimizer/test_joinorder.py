"""Unit tests for the cost-based optimizer stages: join-order selection,
redundant join-back elimination (with stats revalidation), column
pruning, hash-side selection and the grounded-cardinality guarantees of
the cost model."""

from __future__ import annotations

import pytest

from repro import connect
from repro.algebra import nodes as an
from repro.algebra.tree import walk_tree
from repro.errors import CostEstimationError
from repro.executor import iterators as it
from repro.optimizer import CostEstimator, Optimizer


def _tables(conn, rows=2000, fan=4, selective=5, domain=100):
    """A 3-relation chain whose syntactic (left-deep) join order is bad:
    big1 x big2 fans out, while big2 x small is highly selective."""
    conn.run(
        """
        CREATE TABLE big1 (k int, v int, pad text);
        CREATE TABLE big2 (k int, j int, pad text);
        CREATE TABLE small (j int, seg text, label text);
        """
    )
    keys = max(rows // fan, 1)
    conn.load_rows("big1", [(i % keys, i % 17, "b1") for i in range(rows)])
    conn.load_rows("big2", [(i % keys, i % domain, "b2") for i in range(rows)])
    conn.load_rows(
        "small",
        [(j, "x" if j < selective else "y", f"l{j}") for j in range(domain)],
    )


CHAIN_SQL = (
    "SELECT s.label, count(*) AS n FROM big1 b1 "
    "JOIN big2 b2 ON b1.k = b2.k JOIN small s ON b2.j = s.j "
    "WHERE s.seg = 'x' GROUP BY s.label"
)


def _joins(node):
    return [n for n in walk_tree(node) if isinstance(n, an.Join)]


def _scans_under(node):
    return [n.table_name for n in walk_tree(node) if isinstance(n, an.Scan)]


class TestJoinOrderSelection:
    def test_chain_is_reshaped_bushy(self):
        conn = connect(optimizer="cost")
        _tables(conn)
        optimized = conn.profile(CHAIN_SQL, execute=False).optimized
        joins = _joins(optimized)
        top = joins[0]
        # Left-deep would put {big1, big2} under the top join's left
        # input; the cost-based shape joins big2 with the filtered small
        # first and streams big1 against that selective result.
        assert _scans_under(top.left) == ["big1"]
        assert sorted(_scans_under(top.right)) == ["big2", "small"]
        assert conn.counters.joins_reordered >= 1

    def test_leaf_sequence_is_preserved(self):
        # Re-association must never commute the leaves: the left-to-right
        # scan sequence (which defines the engines' row order) stays put.
        conn = connect(optimizer="cost")
        _tables(conn)
        optimized = conn.profile(CHAIN_SQL, execute=False).optimized
        assert _scans_under(optimized) == ["big1", "big2", "small"]

    def test_row_order_identical_to_rules_mode(self):
        # No ORDER BY anywhere: the result order is engine-defined, and
        # re-association must reproduce it bit-for-bit.
        sql = (
            "SELECT b1.v, b2.j, s.label FROM big1 b1 "
            "JOIN big2 b2 ON b1.k = b2.k JOIN small s ON b2.j = s.j "
            "WHERE s.seg = 'x'"
        )
        results = {}
        for mode in ("cost", "rules"):
            conn = connect(optimizer=mode)
            _tables(conn, rows=500)
            results[mode] = conn.execute(sql).fetchall()
        assert results["cost"] == results["rules"]
        assert results["cost"], "query unexpectedly returned nothing"

    def test_no_reorder_without_benefit(self):
        conn = connect(optimizer="cost")
        conn.run("CREATE TABLE t (a int); CREATE TABLE s (a int); CREATE TABLE u (a int)")
        for name in ("t", "s", "u"):
            conn.load_rows(name, [(i,) for i in range(10)])
        conn.profile(
            "SELECT t.a FROM t JOIN s ON t.a = s.a JOIN u ON s.a = u.a",
            execute=False,
        )
        # Symmetric inputs: the syntactic left-deep shape is already
        # optimal, so nothing should be counted as reordered.
        assert conn.counters.joins_reordered == 0

    def test_greedy_chaining_beyond_dp_limit(self):
        # Regions larger than the DP bound fall back to greedy
        # adjacent-pair chaining; force the fallback with a tiny bound
        # and check it still finds the selective shape, order intact.
        conn = connect(optimizer="cost")
        _tables(conn)
        analyzed = conn.profile(CHAIN_SQL, execute=False).analyzed
        from repro import PipelineCounters

        counters = PipelineCounters()
        optimizer = Optimizer(conn.catalog, dp_limit=2, counters=counters)
        optimized = optimizer.optimize(conn.rewriter.expand(analyzed).node)
        assert counters.joins_reordered >= 1
        assert _scans_under(optimized) == ["big1", "big2", "small"]
        top = _joins(optimized)[0]
        assert _scans_under(top.left) == ["big1"]

    def test_rules_mode_keeps_syntactic_order(self):
        conn = connect(optimizer="rules")
        _tables(conn)
        optimized = conn.profile(CHAIN_SQL, execute=False).optimized
        top = _joins(optimized)[0]
        assert sorted(_scans_under(top.left)) == ["big1", "big2"]
        assert conn.counters.joins_reordered == 0


class TestJoinBackElimination:
    SQL = "SELECT c0 FROM (SELECT PROVENANCE a AS c0 FROM big LIMIT 3) q"

    def _db(self):
        conn = connect(optimizer="cost")
        conn.run("CREATE TABLE big (a int, b text)")
        conn.load_rows("big", [(i, f"t{i}") for i in range(10)])
        return conn

    def test_redundant_joinback_is_removed(self):
        conn = self._db()
        optimized = conn.profile(self.SQL, execute=False).optimized
        assert not _joins(optimized), "the provenance join-back should be gone"
        assert conn.counters.joinbacks_eliminated == 1
        assert conn.execute(self.SQL).fetchall() == [(0,), (1,), (2,)]

    def test_elimination_requires_uniqueness(self):
        conn = self._db()
        conn.run("INSERT INTO big VALUES (0, 'dup')")  # a is not unique now
        optimized = conn.profile(self.SQL, execute=False).optimized
        assert _joins(optimized), "non-unique key must keep the join-back"
        assert conn.counters.joinbacks_eliminated == 0

    def test_stale_stats_trigger_replan(self):
        # Row-level DML does not bump the catalog version, so the cached
        # eliminated plan must revalidate its uniqueness proof per
        # execution and transparently re-prepare once it breaks.
        conn = self._db()
        assert conn.execute(self.SQL).fetchall() == [(0,), (1,), (2,)]
        assert conn.counters.joinbacks_eliminated == 1
        conn.run("INSERT INTO big VALUES (0, 'dup')")
        # With a duplicated key the join-back legitimately duplicates the
        # limited row (each copy is a witness) — the eliminated plan
        # would miss that.
        assert conn.execute(self.SQL).fetchall() == [(0,), (0,), (1,), (2,)]

    def test_prepared_statement_survives_stats_change(self):
        conn = self._db()
        stmt = conn.prepare(self.SQL)
        assert stmt.execute().rows == [(0,), (1,), (2,)]
        conn.run("INSERT INTO big VALUES (0, 'dup')")
        assert stmt.execute().rows == [(0,), (0,), (1,), (2,)]

    def test_error_capable_condition_blocks_elimination(self):
        # Dropping the join would also drop the ON condition's runtime
        # errors; both optimizer modes must raise identically.
        outcomes = {}
        for mode in ("cost", "rules"):
            # Row engine pinned: it evaluates conditions eagerly, so the
            # error must surface in both modes (sqlite legitimately skips
            # dead expressions on its own — consistently across modes).
            conn = connect(engine="row", optimizer=mode)
            conn.run("CREATE TABLE t (a int, b int); CREATE TABLE s (x int, y int)")
            conn.load_rows("t", [(1, 0), (2, 1)])
            conn.load_rows("s", [(1, 10), (2, 20)])
            sql = "SELECT t.a FROM t LEFT JOIN s ON t.a = s.x AND 1 / t.b = 1"
            try:
                outcomes[mode] = ("ok", conn.execute(sql).fetchall())
            except Exception as exc:  # noqa: BLE001 - compared structurally
                outcomes[mode] = ("error", type(exc).__name__, str(exc))
        assert outcomes["cost"] == outcomes["rules"]
        assert outcomes["cost"][0] == "error"

    def test_error_capable_right_subtree_blocks_elimination(self):
        # Same for errors raised while evaluating the right input itself.
        outcomes = {}
        for mode in ("cost", "rules"):
            conn = connect(engine="row", optimizer=mode)
            conn.run("CREATE TABLE t (a int); CREATE TABLE s (x int, y int)")
            conn.load_rows("t", [(1,), (2,)])
            conn.load_rows("s", [(1, 10), (2, 0)])
            sql = (
                "SELECT t.a FROM t LEFT JOIN "
                "(SELECT x, 100 / y AS inv FROM s) q ON t.a = q.x"
            )
            try:
                outcomes[mode] = ("ok", conn.execute(sql).fetchall())
            except Exception as exc:  # noqa: BLE001 - compared structurally
                outcomes[mode] = ("error", type(exc).__name__, str(exc))
        assert outcomes["cost"] == outcomes["rules"]
        assert outcomes["cost"][0] == "error"

    def test_insert_select_revalidates_stats(self):
        # INSERT ... SELECT runs through _execute_query, not
        # PreparedPlan.execute — it must revalidate statistics-derived
        # eliminations all the same (regression: the stale cached plan
        # used to be executed directly, silently dropping the duplicated
        # match).
        conn = connect(optimizer="cost")
        conn.run(
            "CREATE TABLE t (a int); CREATE TABLE s (x int, y text); "
            "CREATE TABLE sink (a int)"
        )
        conn.load_rows("t", [(1,), (2,)])
        conn.load_rows("s", [(1, "u"), (2, "v")])
        insert = "INSERT INTO sink SELECT t.a FROM t LEFT JOIN s ON t.a = s.x"
        conn.run(insert)  # caches a plan whose join-back was eliminated
        assert conn.counters.joinbacks_eliminated == 1
        conn.run("INSERT INTO s VALUES (1, 'dup'); DELETE FROM sink WHERE a > 0")
        conn.run(insert)
        assert conn.run("SELECT a FROM sink").rows == [(1,), (1,), (2,)]

    def test_provenance_consumers_keep_the_joinback(self):
        # The top-level provenance query still needs its witnesses.
        conn = self._db()
        sql = "SELECT PROVENANCE a AS c0 FROM big LIMIT 3"
        assert conn.execute(sql).fetchall() == [
            (0, 0, "t0"),
            (1, 1, "t1"),
            (2, 2, "t2"),
        ]


class TestColumnPruning:
    def test_prunes_dead_provenance_duplicates(self):
        conn = connect(optimizer="cost")
        _tables(conn, rows=200)
        conn.profile("SELECT PROVENANCE " + CHAIN_SQL[len("SELECT "):], execute=False)
        assert conn.counters.columns_pruned > 0

    def test_pruning_under_outer_join(self):
        # The unused columns of the null-padded side of a LEFT JOIN are
        # pruned, and padding semantics survive.
        results = {}
        trees = {}
        for mode in ("cost", "rules"):
            conn = connect(optimizer=mode)
            conn.run(
                "CREATE TABLE t (a int, b text); "
                "CREATE TABLE s (x int, y text, z int, w int, q text)"
            )
            conn.load_rows("t", [(1, "p"), (2, "q"), (9, "r")])
            conn.load_rows(
                "s",
                [(1, "one", 10, 0, "a"), (1, "uno", 11, 1, "b"), (2, "two", 20, 2, "c")],
            )
            sql = (
                "SELECT u.a, u.y FROM "
                "(SELECT t.a AS a, t.b AS b, s.y AS y, s.z AS z "
                " FROM t LEFT JOIN s ON t.a = s.x) u"
            )
            profile = conn.profile(sql, execute=False)
            trees[mode] = profile.optimized
            results[mode] = conn.execute(sql).fetchall()
        assert results["cost"] == results["rules"]
        assert (9, None) in results["cost"]  # padding intact

        def widths(tree):
            join = next(n for n in walk_tree(tree) if isinstance(n, an.Join))
            return len(join.left.schema) + len(join.right.schema)

        assert widths(trees["cost"]) < widths(trees["rules"])

    def test_root_schema_never_pruned(self):
        conn = connect()
        conn.run("CREATE TABLE t (a int, b text, c int)")
        conn.load_rows("t", [(1, "x", 2)])
        cursor = conn.execute("SELECT a, b, c FROM t")
        assert [d[0] for d in cursor.description] == ["a", "b", "c"]


class TestHashSideSelection:
    def test_build_side_follows_cardinalities(self):
        conn = connect(engine="row")
        conn.run("CREATE TABLE tiny (a int); CREATE TABLE huge (a int, pad text)")
        conn.load_rows("tiny", [(i,) for i in range(3)])
        conn.load_rows("huge", [(i % 3, "p") for i in range(5000)])
        plan_small_left = conn.profile(
            "SELECT tiny.a FROM tiny JOIN huge ON tiny.a = huge.a", execute=False
        ).physical
        joins = [
            op
            for op in _walk_physical(plan_small_left)
            if isinstance(op, it.PHashJoin)
        ]
        assert joins and joins[0].build_side == "left"

        plan_small_right = conn.profile(
            "SELECT tiny.a FROM huge JOIN tiny ON tiny.a = huge.a", execute=False
        ).physical
        joins = [
            op
            for op in _walk_physical(plan_small_right)
            if isinstance(op, it.PHashJoin)
        ]
        assert joins and joins[0].build_side == "right"

    def test_error_capable_residual_pins_build_right(self):
        # Build-left evaluates the residual eagerly over the whole right
        # stream; under LIMIT the lazy build-right path may never reach a
        # late error row. The planner must keep build-right whenever the
        # condition could raise.
        conn = connect(engine="row")
        conn.run("CREATE TABLE small (k int); CREATE TABLE big (k int, v int)")
        conn.load_rows("small", [(i,) for i in range(10)])
        conn.load_rows("big", [(i % 10, 1 if i < 99 else 0) for i in range(100)])
        sql = (
            "SELECT small.k FROM small JOIN big "
            "ON small.k = big.k AND 1 / big.v > 0 LIMIT 1"
        )
        physical = conn.profile(sql, execute=False).physical
        joins = [op for op in _walk_physical(physical) if isinstance(op, it.PHashJoin)]
        assert joins and joins[0].build_side == "right"
        assert conn.execute(sql).fetchall() == [(0,)]

    def test_error_capable_left_subtree_pins_build_right(self):
        # Build-left also materializes the whole left input; a lazily
        # streamed left subtree with an error-capable expression must pin
        # build-right so LIMIT semantics (and cross-engine error
        # agreement) are preserved.
        conn = connect(engine="row")
        conn.run("CREATE TABLE small (k int, x int); CREATE TABLE big (k int, v int)")
        conn.load_rows("small", [(i, i) for i in range(5)])
        conn.load_rows("big", [(i % 5, i) for i in range(40)])
        sql = (
            "SELECT q.y, b.v FROM (SELECT k, 1 / (x - 3) AS y FROM small) q "
            "JOIN big b ON q.k = b.k LIMIT 1"
        )
        physical = conn.profile(sql, execute=False).physical
        joins = [op for op in _walk_physical(physical) if isinstance(op, it.PHashJoin)]
        assert joins and joins[0].build_side == "right"

    def test_vectorized_build_left_matches_row_engine(self):
        from repro.executor import vectorized as vec

        rows = {}
        for engine in ("row", "vectorized"):
            conn = connect(engine=engine)
            conn.run("CREATE TABLE tiny (a int); CREATE TABLE huge (a int, pad text)")
            conn.load_rows("tiny", [(i,) for i in range(3)])
            conn.load_rows("huge", [(i % 5, "p") for i in range(5000)])
            sql = "SELECT tiny.a, huge.a FROM tiny LEFT JOIN huge ON tiny.a = huge.a"
            if engine == "vectorized":
                physical = conn.profile(sql, execute=False).physical
                joins = [
                    op
                    for op in _walk_physical(physical)
                    if isinstance(op, vec.VHashJoin)
                ]
                assert joins and joins[0].build_side == "left"
            rows[engine] = conn.execute(sql).fetchall()
        assert rows["row"] == rows["vectorized"]

    def test_build_left_matches_build_right_output(self):
        conn = connect()
        conn.run("CREATE TABLE tiny (a int, t text); CREATE TABLE huge (a int, v int)")
        conn.load_rows("tiny", [(1, "one"), (2, "two"), (None, "null")])
        conn.load_rows("huge", [(i % 4 if i % 5 else None, i) for i in range(1000)])
        for kind in ("JOIN", "LEFT JOIN"):
            sql = f"SELECT tiny.t, huge.v FROM tiny {kind} huge ON tiny.a = huge.a"
            got = conn.execute(sql).fetchall()
            ref = connect(optimizer="rules")
            ref.run("CREATE TABLE tiny (a int, t text); CREATE TABLE huge (a int, v int)")
            ref.load_rows("tiny", [(1, "one"), (2, "two"), (None, "null")])
            ref.load_rows("huge", [(i % 4 if i % 5 else None, i) for i in range(1000)])
            assert got == ref.execute(sql).fetchall()


class TestCostGrounding:
    def test_unknown_scan_raises(self):
        conn = connect()
        conn.run("CREATE TABLE t (a int)")
        scan = an.Scan("t", "t", conn.catalog.table("t").schema)
        estimator = CostEstimator(conn.catalog)
        assert estimator.estimate(scan).rows == 0.0
        conn.catalog.drop_table("t")
        with pytest.raises(CostEstimationError):
            estimator.estimate(scan)

    def test_ungrounded_region_keeps_syntactic_order(self):
        conn = connect()
        _tables(conn)
        optimized = conn.profile(CHAIN_SQL, execute=False).optimized
        conn.catalog.drop_table("big1")
        # Re-optimizing the same tree without statistics must not throw
        # and must not reorder.
        optimizer = Optimizer(conn.catalog)
        reoptimized = optimizer.optimize(optimized)
        assert _scans_under(reoptimized) == _scans_under(optimized)

    def test_range_selectivity_uses_min_max(self):
        conn = connect()
        conn.run("CREATE TABLE t (a int)")
        conn.load_rows("t", [(i,) for i in range(100)])
        estimator = CostEstimator(conn.catalog)
        narrow = conn.profile("SELECT a FROM t WHERE a < 10", execute=False)
        wide = conn.profile("SELECT a FROM t WHERE a < 90", execute=False)
        assert estimator.estimate(narrow.analyzed).rows < estimator.estimate(
            wide.analyzed
        ).rows

    def test_explain_plan_carries_estimates(self):
        conn = connect()
        conn.run("CREATE TABLE t (a int)")
        conn.load_rows("t", [(i,) for i in range(42)])
        text = conn.explain("SELECT a FROM t", "plan")
        assert "rows≈42" in text and "cost≈" in text


def _walk_physical(op):
    yield op
    for slot in ("child", "left", "right"):
        inner = getattr(op, slot, None)
        if inner is not None and hasattr(inner, "schema"):
            yield from _walk_physical(inner)
