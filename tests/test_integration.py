"""End-to-end integration tests: the shipped examples run cleanly, and
multi-stage provenance scenarios behave across the whole stack."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

from repro import connect

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("example", EXAMPLES, ids=[e.stem for e in EXAMPLES])
def test_example_runs(example, capsys):
    """Every shipped example must execute without error and produce
    output (their asserts double as scenario checks)."""
    runpy.run_path(str(example), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100


class TestMultiStageScenario:
    """A three-stage pipeline mixing views, eager provenance, external
    provenance and both contribution semantics."""

    @pytest.fixture
    def db(self):
        db = connect()
        db.run(
            """
            CREATE TABLE raw (id int, category text, value int, source text);
            """
        )
        db.load_rows(
            "raw",
            [
                (1, "a", 10, "feed1"),
                (2, "a", 20, "feed2"),
                (3, "b", 30, "feed1"),
                (4, "b", 40, "feed2"),
                (5, "b", 50, "feed1"),
            ],
        )
        return db

    def test_view_then_aggregate_provenance(self, db):
        db.run("CREATE VIEW filtered AS SELECT id, category, value FROM raw WHERE value > 15")
        result = db.run(
            "SELECT PROVENANCE category, sum(value) AS total FROM filtered GROUP BY category"
        )
        b_rows = [row for row in result.rows if row[0] == "b"]
        assert len(b_rows) == 3 and all(row[1] == 120 for row in b_rows)
        assert sorted(row[result.schema.index_of("prov_raw_id")] for row in b_rows) == [3, 4, 5]

    def test_eager_chain(self, db):
        db.run(
            "CREATE TABLE stage1 AS SELECT PROVENANCE id, category, value FROM raw WHERE value >= 20"
        )
        db.run(
            "CREATE TABLE stage2 AS SELECT PROVENANCE category, count(*) AS n FROM stage1 GROUP BY category"
        )
        final = db.run("SELECT * FROM stage2 ORDER BY category, prov_raw_id")
        # Stage 2's provenance columns are stage 1's stored witnesses.
        assert [c for c in final.columns if c.startswith("prov_")] == [
            "prov_raw_id",
            "prov_raw_category",
            "prov_raw_value",
            "prov_raw_source",
        ]
        a_rows = [row for row in final.rows if row[0] == "a"]
        assert len(a_rows) == 1 and a_rows[0][1] == 1 and a_rows[0][2] == 2

    def test_mixed_semantics_same_session(self, db):
        influence = db.run("SELECT PROVENANCE category FROM raw WHERE id = 1")
        copy = db.run(
            "SELECT PROVENANCE ON CONTRIBUTION (COPY PARTIAL) category FROM raw WHERE id = 1"
        )
        assert influence.columns == copy.columns
        assert influence.rows[0][1] == 1  # influence keeps the id witness
        assert copy.rows[0][1] is None  # copy masks it (id not copied)

    def test_provenance_of_provenance(self, db):
        """Rewriting an already-rewritten query (provenance of a
        provenance subquery) nests cleanly."""
        result = db.run(
            "SELECT PROVENANCE p.category FROM "
            "(SELECT PROVENANCE category FROM raw WHERE value > 30) AS p"
        )
        # The outer rewrite traces through the inner provenance query to
        # the base relation again.
        assert any(c.startswith("prov_raw") for c in result.provenance_attrs)
        assert {row[0] for row in result.rows} == {"b"}

    def test_union_of_provenance_and_data(self, db):
        """Provenance results are first-class relations: they can be
        stored, unioned and re-queried."""
        db.run("CREATE TABLE p1 AS SELECT PROVENANCE id FROM raw WHERE category = 'a'")
        db.run("CREATE TABLE p2 AS SELECT PROVENANCE id FROM raw WHERE category = 'b'")
        merged = db.run(
            "SELECT * FROM p1 UNION ALL SELECT * FROM p2 ORDER BY id"
        )
        assert len(merged) == 5

    def test_transactions_of_dml_and_provenance(self, db):
        before = db.run("SELECT PROVENANCE count(*) AS n FROM raw")
        db.run("DELETE FROM raw WHERE source = 'feed2'")
        after = db.run("SELECT PROVENANCE count(*) AS n FROM raw")
        assert before.rows[0][0] == 5 and after.rows[0][0] == 3
        assert len(after) == 3  # one witness row per remaining tuple
