"""Catalog, schema and statistics tests."""

from __future__ import annotations

import pytest

from repro.catalog import Catalog
from repro.catalog.schema import Attribute, Schema, schema_of
from repro.catalog.stats import compute_table_stats
from repro.datatypes import SQLType as T
from repro.errors import CatalogError
from repro.sql import parse_statement, ast


def _query(sql):
    return parse_statement(sql).query


class TestSchema:
    def test_lookup_case_insensitive(self):
        schema = schema_of(("mId", T.INT), ("text", T.TEXT))
        assert schema.index_of("MID") == 0
        assert schema.attribute("Text").type is T.TEXT

    def test_duplicate_names_rejected(self):
        with pytest.raises(CatalogError, match="duplicate attribute"):
            Schema([Attribute("a", T.INT), Attribute("A", T.TEXT)])

    def test_unknown_attribute(self):
        schema = schema_of(("a", T.INT))
        with pytest.raises(CatalogError, match="no attribute 'b'"):
            schema.index_of("b")

    def test_concat_project_rename(self):
        left = schema_of(("a", T.INT))
        right = schema_of(("b", T.TEXT))
        combined = left.concat(right)
        assert combined.names == ["a", "b"]
        assert combined.project(["b"]).names == ["b"]
        assert combined.renamed(["x", "y"]).names == ["x", "y"]
        with pytest.raises(CatalogError):
            combined.renamed(["only_one"])


class TestCatalog:
    def test_create_and_drop_table(self):
        catalog = Catalog()
        catalog.create_table("t", schema_of(("a", T.INT)))
        assert catalog.has_table("T")  # case-insensitive
        catalog.drop_table("t")
        assert not catalog.has_table("t")

    def test_duplicate_relation_rejected(self):
        catalog = Catalog()
        catalog.create_table("t", schema_of(("a", T.INT)))
        with pytest.raises(CatalogError, match="already exists"):
            catalog.create_table("T", schema_of(("a", T.INT)))
        with pytest.raises(CatalogError, match="already exists"):
            catalog.create_view("t", _query("SELECT 1"), "SELECT 1")

    def test_if_not_exists(self):
        catalog = Catalog()
        first = catalog.create_table("t", schema_of(("a", T.INT)))
        second = catalog.create_table("t", schema_of(("a", T.INT)), if_not_exists=True)
        assert first is second

    def test_drop_missing(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.drop_table("nope")
        assert catalog.drop_table("nope", if_exists=True) is False

    def test_views(self):
        catalog = Catalog()
        catalog.create_view("v", _query("SELECT 1"), "SELECT 1")
        assert catalog.has_view("v") and catalog.has_relation("V")
        with pytest.raises(CatalogError, match="already exists"):
            catalog.create_view("v", _query("SELECT 2"), "SELECT 2")
        catalog.create_view("v", _query("SELECT 2"), "SELECT 2", or_replace=True)
        assert catalog.view("v").sql == "SELECT 2"
        catalog.drop_view("v")
        assert not catalog.has_view("v")

    def test_provenance_registration(self):
        catalog = Catalog()
        catalog.create_table("p", schema_of(("a", T.INT), ("prov_r_a", T.INT)))
        catalog.register_provenance_attrs("p", ("prov_r_a",))
        assert catalog.provenance_attrs("p") == ("prov_r_a",)
        with pytest.raises(CatalogError):
            catalog.register_provenance_attrs("missing", ("x",))

    def test_relation_names_sorted(self):
        catalog = Catalog()
        catalog.create_table("zeta", schema_of(("a", T.INT)))
        catalog.create_view("alpha", _query("SELECT 1"), "SELECT 1")
        assert catalog.relation_names() == ["alpha", "zeta"]


class TestStats:
    def test_stats_computation(self):
        catalog = Catalog()
        entry = catalog.create_table("t", schema_of(("a", T.INT), ("b", T.TEXT)))
        entry.table.insert_many([(1, "x"), (1, None), (2, "x"), (3, "y")])
        stats = entry.stats()
        assert stats.row_count == 4
        assert stats.column("a").n_distinct == 3
        assert stats.column("b").n_distinct == 2
        assert stats.column("b").null_fraction == 0.25

    def test_stats_cache_invalidated_on_mutation(self):
        catalog = Catalog()
        entry = catalog.create_table("t", schema_of(("a", T.INT)))
        entry.table.insert((1,))
        assert entry.stats().row_count == 1
        entry.table.insert((2,))
        assert entry.stats().row_count == 2

    def test_selectivity(self):
        catalog = Catalog()
        entry = catalog.create_table("t", schema_of(("a", T.INT)))
        entry.table.insert_many([(i % 5,) for i in range(100)])
        column = entry.stats().column("a")
        assert column.selectivity_eq == pytest.approx(0.2)

    def test_empty_table_stats(self):
        catalog = Catalog()
        entry = catalog.create_table("t", schema_of(("a", T.INT)))
        stats = compute_table_stats(entry.table)
        assert stats.row_count == 0
        assert stats.column("a").null_fraction == 0.0
