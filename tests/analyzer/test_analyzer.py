"""Analyzer tests: resolution, scoping, stars, grouping, errors.

These run the full engine pipeline on small fixtures and assert either
results (resolution semantics are best observed end to end) or the
specific AnalyzeError raised.
"""

from __future__ import annotations

import pytest

from repro import AnalyzeError, connect


@pytest.fixture
def db():
    session = connect()
    session.run(
        """
        CREATE TABLE r (a int, b text, c float);
        CREATE TABLE s (a int, d text);
        INSERT INTO r VALUES (1, 'x', 1.5), (2, 'y', 2.5), (3, 'x', 3.5);
        INSERT INTO s VALUES (1, 'one'), (2, 'two'), (9, 'nine');
        """
    )
    return session


def rows(relation):
    return sorted(relation.rows, key=repr)


class TestNameResolution:
    def test_unqualified_unique_column(self, db):
        assert db.run("SELECT b FROM r WHERE a = 1").rows == [("x",)]

    def test_qualified_column(self, db):
        assert db.run("SELECT r.b FROM r WHERE r.a = 2").rows == [("y",)]

    def test_ambiguous_column_rejected(self, db):
        with pytest.raises(AnalyzeError, match="ambiguous"):
            db.run("SELECT a FROM r, s")

    def test_qualified_disambiguates(self, db):
        result = db.run("SELECT r.a, s.a FROM r, s WHERE r.a = s.a")
        assert rows(result) == [(1, 1), (2, 2)]

    def test_unknown_column(self, db):
        with pytest.raises(AnalyzeError, match="does not exist"):
            db.run("SELECT zzz FROM r")

    def test_unknown_relation(self, db):
        with pytest.raises(AnalyzeError, match="relation 'nope' does not exist"):
            db.run("SELECT * FROM nope")

    def test_unknown_column_in_qualifier(self, db):
        with pytest.raises(AnalyzeError, match="not found in relation"):
            db.run("SELECT r.zzz FROM r")

    def test_alias_shadows_table_name(self, db):
        with pytest.raises(AnalyzeError):
            db.run("SELECT r.a FROM r AS x")  # r no longer visible

    def test_duplicate_alias_rejected(self, db):
        with pytest.raises(AnalyzeError, match="more than once"):
            db.run("SELECT 1 FROM r, r")

    def test_self_join_with_aliases(self, db):
        result = db.run(
            "SELECT x.a, y.a FROM r x, r y WHERE x.a = y.a + 1"
        )
        assert rows(result) == [(2, 1), (3, 2)]

    def test_three_part_name_rejected(self, db):
        with pytest.raises(AnalyzeError, match="cross-database"):
            db.run("SELECT db.r.a FROM r")


class TestStars:
    def test_bare_star(self, db):
        result = db.run("SELECT * FROM r")
        assert result.columns == ["a", "b", "c"]

    def test_qualified_star(self, db):
        result = db.run("SELECT s.* FROM r, s WHERE r.a = s.a")
        assert result.columns == ["a", "d"]

    def test_star_without_from(self, db):
        with pytest.raises(AnalyzeError):
            db.run("SELECT *")

    def test_star_mixed_with_expressions(self, db):
        result = db.run("SELECT *, a + 1 AS nxt FROM r WHERE a = 1")
        assert result.columns == ["a", "b", "c", "nxt"]
        assert result.rows == [(1, "x", 1.5, 2)]

    def test_duplicate_output_names_uniquified(self, db):
        result = db.run("SELECT a, a FROM r WHERE a = 1")
        assert result.columns == ["a", "a_1"]


class TestGrouping:
    def test_group_by_column(self, db):
        result = db.run("SELECT b, count(*) FROM r GROUP BY b")
        assert rows(result) == [("x", 2), ("y", 1)]

    def test_group_by_ordinal(self, db):
        result = db.run("SELECT b, count(*) FROM r GROUP BY 1")
        assert rows(result) == [("x", 2), ("y", 1)]

    def test_group_by_alias(self, db):
        result = db.run("SELECT upper(b) AS ub, count(*) FROM r GROUP BY ub")
        assert rows(result) == [("X", 2), ("Y", 1)]

    def test_group_by_expression_reused_in_select(self, db):
        result = db.run("SELECT a % 2, count(*) FROM r GROUP BY a % 2")
        assert rows(result) == [(0, 1), (1, 2)]

    def test_ungrouped_column_rejected(self, db):
        with pytest.raises(AnalyzeError, match="GROUP BY"):
            db.run("SELECT a, b, count(*) FROM r GROUP BY a")

    def test_aggregate_in_where_rejected(self, db):
        with pytest.raises(AnalyzeError, match="not allowed"):
            db.run("SELECT a FROM r WHERE count(*) > 1")

    def test_nested_aggregate_rejected(self, db):
        with pytest.raises(AnalyzeError, match="nested"):
            db.run("SELECT sum(count(*)) FROM r")

    def test_having_without_group_by(self, db):
        result = db.run("SELECT count(*) FROM r HAVING count(*) > 2")
        assert result.rows == [(3,)]
        result = db.run("SELECT count(*) FROM r HAVING count(*) > 5")
        assert result.rows == []

    def test_bare_aggregation_makes_query_grouped(self, db):
        with pytest.raises(AnalyzeError, match="GROUP BY"):
            db.run("SELECT a, count(*) FROM r")

    def test_group_by_ordinal_out_of_range(self, db):
        with pytest.raises(AnalyzeError, match="out of range"):
            db.run("SELECT b FROM r GROUP BY 5")


class TestOrderByResolution:
    def test_order_by_output_alias(self, db):
        result = db.run("SELECT a AS k FROM r ORDER BY k DESC")
        assert result.rows == [(3,), (2,), (1,)]

    def test_order_by_ordinal(self, db):
        result = db.run("SELECT b, a FROM r ORDER BY 2 DESC")
        assert [r[1] for r in result.rows] == [3, 2, 1]

    def test_order_by_hidden_source_column(self, db):
        result = db.run("SELECT b FROM r ORDER BY a DESC")
        assert result.columns == ["b"]
        assert result.rows == [("x",), ("y",), ("x",)]

    def test_order_by_expression(self, db):
        result = db.run("SELECT a FROM r ORDER BY a % 2, a")
        assert result.rows == [(2,), (1,), (3,)]

    def test_distinct_with_hidden_sort_key_rejected(self, db):
        with pytest.raises(AnalyzeError, match="DISTINCT"):
            db.run("SELECT DISTINCT b FROM r ORDER BY a")

    def test_order_by_aggregate(self, db):
        result = db.run("SELECT b, count(*) FROM r GROUP BY b ORDER BY count(*) DESC")
        assert result.rows[0] == ("x", 2)

    def test_ordinal_out_of_range(self, db):
        with pytest.raises(AnalyzeError, match="out of range"):
            db.run("SELECT a FROM r ORDER BY 9")


class TestViewsAndSubqueries:
    def test_view_unfolding(self, db):
        db.run("CREATE VIEW big AS SELECT a, b FROM r WHERE a >= 2")
        assert rows(db.run("SELECT b FROM big")) == [("x",), ("y",)]

    def test_view_over_view(self, db):
        db.run("CREATE VIEW v1 AS SELECT a FROM r")
        db.run("CREATE VIEW v2 AS SELECT a + 1 AS a1 FROM v1")
        assert rows(db.run("SELECT * FROM v2")) == [(2,), (3,), (4,)]

    def test_view_alias(self, db):
        db.run("CREATE VIEW v1 AS SELECT a FROM r")
        assert len(db.run("SELECT x.a FROM v1 AS x")) == 3

    def test_derived_table_column_aliases(self, db):
        result = db.run("SELECT k FROM (SELECT a FROM r) AS d (k) WHERE k = 1")
        assert result.rows == [(1,)]

    def test_derived_table_alias_arity_mismatch(self, db):
        with pytest.raises(AnalyzeError, match="aliases"):
            db.run("SELECT 1 FROM (SELECT a, b FROM r) AS d (k)")

    def test_derived_tables_are_not_lateral(self, db):
        with pytest.raises(AnalyzeError, match="does not exist"):
            db.run("SELECT 1 FROM r, (SELECT a FROM s WHERE s.a = r.a) AS d")

    def test_correlated_subquery_resolves_outward(self, db):
        result = db.run(
            "SELECT a FROM r WHERE EXISTS (SELECT 1 FROM s WHERE s.a = r.a)"
        )
        assert rows(result) == [(1,), (2,)]

    def test_setop_arity_mismatch(self, db):
        with pytest.raises(AnalyzeError, match="same number of columns"):
            db.run("SELECT a, b FROM r UNION SELECT a FROM s")

    def test_limit_with_column_rejected(self, db):
        with pytest.raises(AnalyzeError, match="LIMIT"):
            db.run("SELECT a FROM r LIMIT a")

    def test_where_must_be_boolean(self, db):
        with pytest.raises(AnalyzeError, match="boolean"):
            db.run("SELECT a FROM r WHERE a + 1")


class TestJoinsAnalysis:
    def test_using_join(self, db):
        result = db.run("SELECT r.b, s.d FROM r JOIN s USING (a)")
        assert rows(result) == [("x", "one"), ("y", "two")]

    def test_natural_join(self, db):
        result = db.run("SELECT r.b, s.d FROM r NATURAL JOIN s")
        assert rows(result) == [("x", "one"), ("y", "two")]

    def test_natural_join_without_common_columns_is_cross(self, db):
        db.run("CREATE TABLE u (z int); INSERT INTO u VALUES (1), (2)")
        assert len(db.run("SELECT 1 FROM s NATURAL JOIN u")) == 6

    def test_using_unknown_column(self, db):
        with pytest.raises(AnalyzeError):
            db.run("SELECT 1 FROM r JOIN s USING (zzz)")

    def test_parenthesized_join_tree(self, db):
        result = db.run(
            "SELECT r.a FROM r JOIN (s JOIN s AS s2 ON s.a = s2.a) ON r.a = s.a"
        )
        assert rows(result) == [(1,), (2,)]
