"""Operator semantics tests: joins (all kinds, hash and nested-loop
paths), aggregation, set operations, DISTINCT, ORDER BY, LIMIT."""

from __future__ import annotations

import pytest

from repro import ExecutionError, connect


@pytest.fixture
def db():
    session = connect()
    session.run(
        """
        CREATE TABLE l (k int, lv text);
        CREATE TABLE r (k int, rv text);
        INSERT INTO l VALUES (1, 'l1'), (2, 'l2'), (2, 'l2b'), (NULL, 'lnull');
        INSERT INTO r VALUES (2, 'r2'), (3, 'r3'), (NULL, 'rnull');
        CREATE TABLE nums (n int);
        INSERT INTO nums VALUES (3), (1), (2), (NULL), (2);
        """
    )
    return session


def rows(relation):
    return sorted(relation.rows, key=repr)


class TestJoins:
    def test_inner_join_and_null_keys_never_match(self, db):
        result = db.run("SELECT lv, rv FROM l JOIN r ON l.k = r.k")
        assert rows(result) == [("l2", "r2"), ("l2b", "r2")]

    def test_left_join_pads_right(self, db):
        result = db.run("SELECT lv, rv FROM l LEFT JOIN r ON l.k = r.k")
        assert rows(result) == [
            ("l1", None),
            ("l2", "r2"),
            ("l2b", "r2"),
            ("lnull", None),
        ]

    def test_right_join_pads_left(self, db):
        result = db.run("SELECT lv, rv FROM l RIGHT JOIN r ON l.k = r.k")
        assert rows(result) == [
            ("l2", "r2"),
            ("l2b", "r2"),
            (None, "r3"),
            (None, "rnull"),
        ]

    def test_full_join(self, db):
        result = db.run("SELECT lv, rv FROM l FULL JOIN r ON l.k = r.k")
        assert rows(result) == [
            ("l1", None),
            ("l2", "r2"),
            ("l2b", "r2"),
            ("lnull", None),
            (None, "r3"),
            (None, "rnull"),
        ]

    def test_null_safe_join_matches_nulls(self, db):
        result = db.run(
            "SELECT lv, rv FROM l JOIN r ON l.k IS NOT DISTINCT FROM r.k"
        )
        assert rows(result) == [("l2", "r2"), ("l2b", "r2"), ("lnull", "rnull")]

    def test_non_equi_join_uses_nested_loop(self, db):
        result = db.run("SELECT lv, rv FROM l JOIN r ON l.k < r.k")
        assert rows(result) == [("l1", "r2"), ("l1", "r3"), ("l2", "r3"), ("l2b", "r3")]

    def test_outer_join_with_non_equi_condition(self, db):
        result = db.run("SELECT lv, rv FROM l LEFT JOIN r ON l.k > r.k")
        assert ("l1", None) in result.rows  # no r.k < 1

    def test_cross_join_cardinality(self, db):
        assert len(db.run("SELECT 1 FROM l CROSS JOIN r")) == 12

    def test_join_condition_with_residual(self, db):
        result = db.run(
            "SELECT lv, rv FROM l JOIN r ON l.k = r.k AND rv LIKE '%2'"
        )
        assert rows(result) == [("l2", "r2"), ("l2b", "r2")]

    def test_left_join_residual_affects_matching(self, db):
        result = db.run(
            "SELECT lv, rv FROM l LEFT JOIN r ON l.k = r.k AND rv = 'nope'"
        )
        assert all(rv is None for _, rv in result.rows)
        assert len(result) == 4


class TestAggregation:
    def test_count_sum_avg_min_max(self, db):
        result = db.run(
            "SELECT count(*), count(n), sum(n), avg(n), min(n), max(n) FROM nums"
        )
        assert result.rows == [(5, 4, 8, 2.0, 1, 3)]

    def test_aggregates_ignore_nulls(self, db):
        assert db.run("SELECT sum(n) FROM nums WHERE n IS NULL").rows == [(None,)]
        assert db.run("SELECT count(n) FROM nums WHERE n IS NULL").rows == [(0,)]

    def test_count_star_on_empty_table(self, db):
        db.run("CREATE TABLE empty (x int)")
        assert db.run("SELECT count(*) FROM empty").rows == [(0,)]
        assert db.run("SELECT sum(x), min(x) FROM empty").rows == [(None, None)]

    def test_group_by_with_null_group(self, db):
        result = db.run("SELECT n, count(*) FROM nums GROUP BY n")
        assert rows(result) == [(1, 1), (2, 2), (3, 1), (None, 1)]

    def test_distinct_aggregate(self, db):
        result = db.run("SELECT count(DISTINCT n), sum(DISTINCT n) FROM nums")
        assert result.rows == [(3, 6)]

    def test_avg_of_ints_is_float(self, db):
        value = db.run("SELECT avg(n) FROM nums").rows[0][0]
        assert isinstance(value, float)

    def test_sum_type_preservation(self, db):
        assert isinstance(db.run("SELECT sum(n) FROM nums").rows[0][0], int)
        db.run("CREATE TABLE fs (f float); INSERT INTO fs VALUES (1.5), (2)")
        assert db.run("SELECT sum(f) FROM fs").rows == [(3.5,)]

    def test_aggregate_over_expression(self, db):
        assert db.run("SELECT sum(n * 2) FROM nums").rows == [(16,)]

    def test_empty_groups_produce_no_rows(self, db):
        assert db.run("SELECT n, count(*) FROM nums WHERE n > 99 GROUP BY n").rows == []


class TestSetOperations:
    def test_union_dedupes(self, db):
        result = db.run("SELECT k FROM l UNION SELECT k FROM r")
        assert rows(result) == [(1,), (2,), (3,), (None,)]

    def test_union_all_keeps_duplicates(self, db):
        assert len(db.run("SELECT k FROM l UNION ALL SELECT k FROM r")) == 7

    def test_intersect(self, db):
        result = db.run("SELECT k FROM l INTERSECT SELECT k FROM r")
        assert rows(result) == [(2,), (None,)]  # set ops treat NULLs as equal

    def test_intersect_all_min_multiplicity(self, db):
        result = db.run("SELECT n FROM nums INTERSECT ALL SELECT n FROM nums WHERE n = 2")
        assert result.rows == [(2,), (2,)]

    def test_except(self, db):
        result = db.run("SELECT k FROM l EXCEPT SELECT k FROM r")
        assert rows(result) == [(1,)]

    def test_except_all_subtracts_counts(self, db):
        result = db.run(
            "SELECT n FROM nums EXCEPT ALL SELECT n FROM nums WHERE n = 2 LIMIT 10"
        )
        # nums holds two 2s and the right side returns both of them,
        # so EXCEPT ALL removes both copies.
        counts = sorted(r[0] for r in result.rows if r[0] is not None)
        assert counts == [1, 3]

    def test_union_unifies_types_positionally(self, db):
        result = db.run("SELECT 1 UNION SELECT 2.5")
        assert rows(result) == [(1,), (2.5,)]


class TestDistinctSortLimit:
    def test_distinct(self, db):
        result = db.run("SELECT DISTINCT n FROM nums")
        assert len(result) == 4  # 1, 2, 3, NULL

    def test_order_by_defaults_nulls_last_asc(self, db):
        result = db.run("SELECT n FROM nums ORDER BY n")
        assert result.rows == [(1,), (2,), (2,), (3,), (None,)]

    def test_order_by_desc_defaults_nulls_first(self, db):
        result = db.run("SELECT n FROM nums ORDER BY n DESC")
        assert result.rows == [(None,), (3,), (2,), (2,), (1,)]

    def test_explicit_nulls_placement(self, db):
        asc_first = db.run("SELECT n FROM nums ORDER BY n ASC NULLS FIRST")
        assert asc_first.rows[0] == (None,)
        desc_last = db.run("SELECT n FROM nums ORDER BY n DESC NULLS LAST")
        assert desc_last.rows[-1] == (None,)

    def test_multi_key_sort_stability(self, db):
        db.run(
            "CREATE TABLE mk (a int, b int);"
            "INSERT INTO mk VALUES (1, 2), (1, 1), (2, 1), (2, 2)"
        )
        result = db.run("SELECT a, b FROM mk ORDER BY a ASC, b DESC")
        assert result.rows == [(1, 2), (1, 1), (2, 2), (2, 1)]

    def test_limit_offset(self, db):
        result = db.run("SELECT n FROM nums ORDER BY n LIMIT 2 OFFSET 1")
        assert result.rows == [(2,), (2,)]

    def test_limit_zero(self, db):
        assert db.run("SELECT n FROM nums LIMIT 0").rows == []

    def test_limit_null_means_all(self, db):
        assert len(db.run("SELECT n FROM nums LIMIT NULL")) == 5

    def test_negative_limit_rejected(self, db):
        with pytest.raises(ExecutionError, match="negative"):
            db.run("SELECT n FROM nums LIMIT -1")

    def test_limit_expression(self, db):
        assert len(db.run("SELECT n FROM nums LIMIT 1 + 1")) == 2
