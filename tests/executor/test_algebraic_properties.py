"""Property-based tests of relational-algebra identities.

The provenance rewrite rules silently assume the engine implements the
algebra correctly (null-safe joins, bag vs set semantics, outer-join
padding). These hypothesis tests check the identities the rules lean on,
over randomly generated tables.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import connect

_value = st.integers(min_value=0, max_value=3) | st.none()
_rows = st.lists(st.tuples(_value, _value), min_size=0, max_size=8)


def make_db(r_rows, s_rows):
    db = connect()
    db.run("CREATE TABLE r (a int, b int); CREATE TABLE s (c int, d int)")
    db.load_rows("r", r_rows)
    db.load_rows("s", s_rows)
    return db


def bag(relation):
    return sorted(relation.rows, key=repr)


@given(r=_rows, s=_rows)
@settings(max_examples=60, deadline=None)
def test_join_commutativity(r, s):
    db = make_db(r, s)
    left = db.run("SELECT a, b, c, d FROM r JOIN s ON a = c")
    right = db.run("SELECT a, b, c, d FROM s JOIN r ON a = c")
    assert bag(left) == bag(right)


@given(r=_rows, s=_rows)
@settings(max_examples=60, deadline=None)
def test_inner_join_equals_filtered_cross(r, s):
    db = make_db(r, s)
    join = db.run("SELECT a, d FROM r JOIN s ON a = c")
    cross = db.run("SELECT a, d FROM r, s WHERE a = c")
    assert bag(join) == bag(cross)


@given(r=_rows, s=_rows)
@settings(max_examples=60, deadline=None)
def test_left_join_contains_inner_plus_padding(r, s):
    db = make_db(r, s)
    inner = db.run("SELECT a, b, c, d FROM r JOIN s ON a = c")
    left = db.run("SELECT a, b, c, d FROM r LEFT JOIN s ON a = c")
    assert len(left) >= len(inner)
    assert len(left) >= len(r)
    padded = [row for row in left.rows if row[2] is None and row[3] is None]
    matched = [row for row in left.rows if not (row[2] is None and row[3] is None)]
    assert bag_list(matched) == bag(inner)
    # Every padded row's left part is an r tuple with no join partner.
    s_keys = {row[0] for row in s if row[0] is not None}
    for row in padded:
        assert row[0] is None or row[0] not in s_keys


def bag_list(rows):
    return sorted(rows, key=repr)


@given(r=_rows, s=_rows)
@settings(max_examples=60, deadline=None)
def test_full_join_is_union_of_left_and_right(r, s):
    db = make_db(r, s)
    full = db.run("SELECT a, b, c, d FROM r FULL JOIN s ON a = c")
    left = db.run("SELECT a, b, c, d FROM r LEFT JOIN s ON a = c")
    right = db.run("SELECT a, b, c, d FROM r RIGHT JOIN s ON a = c")
    inner = db.run("SELECT a, b, c, d FROM r JOIN s ON a = c")
    assert len(full) == len(left) + len(right) - len(inner)


@given(r=_rows, s=_rows)
@settings(max_examples=60, deadline=None)
def test_null_safe_join_partitions_rows(r, s):
    """x = y matches a subset of x IS NOT DISTINCT FROM y pairs."""
    db = make_db(r, s)
    equi = db.run("SELECT a, c FROM r JOIN s ON a = c")
    null_safe = db.run("SELECT a, c FROM r JOIN s ON a IS NOT DISTINCT FROM c")
    assert len(null_safe) >= len(equi)
    extra = len(null_safe) - len(equi)
    r_nulls = sum(1 for row in r if row[0] is None)
    s_nulls = sum(1 for row in s if row[0] is None)
    assert extra == r_nulls * s_nulls


@given(r=_rows, s=_rows)
@settings(max_examples=60, deadline=None)
def test_union_all_cardinality(r, s):
    db = make_db(r, s)
    union_all = db.run("SELECT a, b FROM r UNION ALL SELECT c, d FROM s")
    assert len(union_all) == len(r) + len(s)


@given(r=_rows, s=_rows)
@settings(max_examples=60, deadline=None)
def test_setop_inclusion_exclusion(r, s):
    db = make_db(r, s)
    union = db.run("SELECT a, b FROM r UNION SELECT c, d FROM s")
    intersect = db.run("SELECT a, b FROM r INTERSECT SELECT c, d FROM s")
    r_distinct = db.run("SELECT DISTINCT a, b FROM r")
    s_distinct = db.run("SELECT DISTINCT c, d FROM s")
    assert len(union) == len(r_distinct) + len(s_distinct) - len(intersect)


@given(r=_rows, s=_rows)
@settings(max_examples=60, deadline=None)
def test_except_plus_intersect_partitions_left(r, s):
    db = make_db(r, s)
    except_ = db.run("SELECT a, b FROM r EXCEPT SELECT c, d FROM s")
    intersect = db.run("SELECT a, b FROM r INTERSECT SELECT c, d FROM s")
    r_distinct = db.run("SELECT DISTINCT a, b FROM r")
    assert len(except_) + len(intersect) == len(r_distinct)
    assert not (set(map(tuple, except_.rows)) & set(map(tuple, intersect.rows)))


@given(r=_rows)
@settings(max_examples=60, deadline=None)
def test_selection_splitting(r):
    db = make_db(r, [])
    conjunct = db.run("SELECT a, b FROM r WHERE a >= 1 AND b >= 1")
    nested = db.run("SELECT a, b FROM (SELECT a, b FROM r WHERE a >= 1) t WHERE b >= 1")
    assert bag(conjunct) == bag(nested)


@given(r=_rows)
@settings(max_examples=60, deadline=None)
def test_distinct_idempotent_and_group_by_equivalence(r):
    db = make_db(r, [])
    distinct = db.run("SELECT DISTINCT a, b FROM r")
    grouped = db.run("SELECT a, b FROM r GROUP BY a, b")
    assert bag(distinct) == bag(grouped)


@given(r=_rows)
@settings(max_examples=60, deadline=None)
def test_count_star_equals_sum_of_group_counts(r):
    db = make_db(r, [])
    total = db.run("SELECT count(*) FROM r").rows[0][0]
    groups = db.run("SELECT a, count(*) AS n FROM r GROUP BY a")
    assert total == sum(row[1] for row in groups.rows)


@given(r=_rows)
@settings(max_examples=60, deadline=None)
def test_order_by_is_permutation(r):
    db = make_db(r, [])
    plain = db.run("SELECT a, b FROM r")
    ordered = db.run("SELECT a, b FROM r ORDER BY a DESC, b ASC NULLS FIRST")
    assert bag(plain) == bag(ordered)
    values = [row[0] for row in ordered.rows if row[0] is not None]
    assert values == sorted(values, reverse=True)


@given(r=_rows, limit=st.integers(min_value=0, max_value=10))
@settings(max_examples=60, deadline=None)
def test_limit_bounds(r, limit):
    db = make_db(r, [])
    result = db.run(f"SELECT a FROM r LIMIT {limit}")
    assert len(result) == min(limit, len(r))
