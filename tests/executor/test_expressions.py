"""Expression evaluation through SQL: NULL semantics, functions, CASE,
LIKE, IN, casts. Each query runs the full pipeline on a one-row table so
the assertions read as truth tables."""

from __future__ import annotations

import pytest

from repro import ExecutionError, connect


@pytest.fixture(scope="module")
def db():
    session = connect()
    session.run("CREATE TABLE one (x int); INSERT INTO one VALUES (1)")
    return session


def val(db, expression):
    return db.run(f"SELECT {expression} FROM one").rows[0][0]


class TestNullSemantics:
    def test_null_comparisons_are_unknown(self, db):
        assert val(db, "NULL = NULL") is None
        assert val(db, "1 = NULL") is None
        assert val(db, "NULL <> NULL") is None

    def test_is_null(self, db):
        assert val(db, "NULL IS NULL") is True
        assert val(db, "1 IS NULL") is False
        assert val(db, "1 IS NOT NULL") is True

    def test_is_distinct_from(self, db):
        assert val(db, "NULL IS DISTINCT FROM NULL") is False
        assert val(db, "NULL IS NOT DISTINCT FROM NULL") is True
        assert val(db, "1 IS DISTINCT FROM 2") is True

    def test_and_or_with_null(self, db):
        assert val(db, "FALSE AND NULL") is False
        assert val(db, "TRUE AND NULL") is None
        assert val(db, "TRUE OR NULL") is True
        assert val(db, "FALSE OR NULL") is None

    def test_arithmetic_with_null(self, db):
        assert val(db, "1 + NULL") is None
        assert val(db, "NULL || 'x'") is None

    def test_in_list_null_semantics(self, db):
        assert val(db, "1 IN (1, NULL)") is True
        assert val(db, "2 IN (1, NULL)") is None  # unknown, not false
        assert val(db, "2 NOT IN (1, NULL)") is None
        assert val(db, "2 IN (1, 3)") is False

    def test_where_unknown_filters_row(self, db):
        assert db.run("SELECT x FROM one WHERE NULL").rows == []


class TestFunctions:
    @pytest.mark.parametrize(
        "expression, expected",
        [
            ("abs(-3)", 3),
            ("round(2.567, 2)", 2.57),
            ("round(2.5)", 2),  # banker's rounding, as Python/IEEE
            ("floor(2.9)", 2),
            ("ceil(2.1)", 3),
            ("sqrt(9)", 3.0),
            ("power(2, 10)", 1024.0),
            ("mod(7, 3)", 1),
            ("upper('aBc')", "ABC"),
            ("lower('aBc')", "abc"),
            ("length('hello')", 5),
            ("substring('hello', 2)", "ello"),
            ("substring('hello', 2, 3)", "ell"),
            ("substring('hello', 0, 3)", "he"),  # PostgreSQL clamping
            ("trim('  x  ')", "x"),
            ("replace('aaa', 'a', 'b')", "bbb"),
            ("concat('a', NULL, 'b')", "ab"),  # concat skips NULLs
            ("coalesce(NULL, NULL, 3)", 3),
            ("coalesce(NULL, NULL)", None),
            ("nullif(1, 1)", None),
            ("nullif(1, 2)", 1),
            ("greatest(1, NULL, 3)", 3),
            ("least(1, NULL, 3)", 1),
            ("greatest(NULL, NULL)", None),
        ],
    )
    def test_scalar_functions(self, db, expression, expected):
        assert val(db, expression) == expected

    def test_strict_functions_propagate_null(self, db):
        assert val(db, "abs(NULL)") is None
        assert val(db, "upper(NULL)") is None

    def test_type_errors_at_runtime(self, db):
        with pytest.raises(ExecutionError):
            val(db, "upper(1)")


class TestLike:
    @pytest.mark.parametrize(
        "expression, expected",
        [
            ("'hello' LIKE 'h%'", True),
            ("'hello' LIKE '%o'", True),
            ("'hello' LIKE 'h_llo'", True),
            ("'hello' LIKE 'H%'", False),
            ("'hello' ILIKE 'H%'", True),
            ("'a%b' LIKE 'a\\%b'", True),
            ("'axb' LIKE 'a\\%b'", False),
            ("'multi\nline' LIKE 'multi%'", True),
            ("NULL LIKE 'a%'", None),
        ],
    )
    def test_patterns(self, db, expression, expected):
        assert val(db, expression) == expected


class TestCase:
    def test_searched_case(self, db):
        assert val(db, "CASE WHEN x > 0 THEN 'pos' ELSE 'neg' END") == "pos"

    def test_simple_case(self, db):
        assert val(db, "CASE x WHEN 1 THEN 'one' WHEN 2 THEN 'two' END") == "one"

    def test_case_without_match_is_null(self, db):
        assert val(db, "CASE x WHEN 99 THEN 'no' END") is None

    def test_case_null_condition_skipped(self, db):
        assert val(db, "CASE WHEN NULL THEN 'a' ELSE 'b' END") == "b"


class TestCasts:
    def test_cast_chain(self, db):
        assert val(db, "CAST('42' AS int) + 1") == 43
        assert val(db, "x::text") == "1"
        assert val(db, "CAST(1 AS bool)") is True

    def test_bad_cast_raises(self, db):
        with pytest.raises(ExecutionError, match="cannot cast"):
            val(db, "CAST('nope' AS int)")


class TestArithmeticThroughSql:
    def test_division_by_zero_surfaces(self, db):
        with pytest.raises(ExecutionError, match="division by zero"):
            val(db, "1 / 0")

    def test_integer_vs_float_division(self, db):
        assert val(db, "7 / 2") == 3
        assert val(db, "7.0 / 2") == 3.5

    def test_precedence(self, db):
        assert val(db, "2 + 3 * 4") == 14
        assert val(db, "(2 + 3) * 4") == 20
        assert val(db, "-2 * 3") == -6
