"""Sublink execution tests: scalar, EXISTS, IN, quantified comparisons;
correlated and uncorrelated; error conditions."""

from __future__ import annotations

import pytest

from repro import ExecutionError, connect


@pytest.fixture
def db():
    session = connect()
    session.run(
        """
        CREATE TABLE emp (id int, name text, dept int, salary int);
        CREATE TABLE dept (id int, dname text);
        INSERT INTO emp VALUES
            (1, 'ann', 10, 100), (2, 'bob', 10, 200),
            (3, 'cat', 20, 300), (4, 'dan', NULL, 150);
        INSERT INTO dept VALUES (10, 'eng'), (20, 'ops'), (30, 'empty');
        """
    )
    return session


def rows(relation):
    return sorted(relation.rows, key=repr)


class TestScalarSubqueries:
    def test_uncorrelated_scalar(self, db):
        result = db.run("SELECT name FROM emp WHERE salary = (SELECT max(salary) FROM emp)")
        assert result.rows == [("cat",)]

    def test_scalar_in_select_list(self, db):
        result = db.run("SELECT name, (SELECT count(*) FROM dept) FROM emp WHERE id = 1")
        assert result.rows == [("ann", 3)]

    def test_correlated_scalar(self, db):
        result = db.run(
            "SELECT name, (SELECT dname FROM dept WHERE dept.id = emp.dept) AS d FROM emp"
        )
        lookup = dict(result.rows)
        assert lookup["ann"] == "eng" and lookup["cat"] == "ops" and lookup["dan"] is None

    def test_empty_scalar_is_null(self, db):
        result = db.run("SELECT (SELECT salary FROM emp WHERE id = 99) FROM dept")
        assert all(r[0] is None for r in result.rows)

    def test_multirow_scalar_raises(self, db):
        with pytest.raises(ExecutionError, match="more than one row"):
            db.run("SELECT (SELECT salary FROM emp) FROM dept")


class TestExists:
    def test_correlated_exists(self, db):
        result = db.run(
            "SELECT dname FROM dept WHERE EXISTS "
            "(SELECT 1 FROM emp WHERE emp.dept = dept.id)"
        )
        assert rows(result) == [("eng",), ("ops",)]

    def test_not_exists(self, db):
        result = db.run(
            "SELECT dname FROM dept WHERE NOT EXISTS "
            "(SELECT 1 FROM emp WHERE emp.dept = dept.id)"
        )
        assert result.rows == [("empty",)]

    def test_uncorrelated_exists(self, db):
        assert len(db.run("SELECT id FROM dept WHERE EXISTS (SELECT 1 FROM emp)")) == 3
        assert db.run(
            "SELECT id FROM dept WHERE EXISTS (SELECT 1 FROM emp WHERE salary > 999)"
        ).rows == []


class TestInSubqueries:
    def test_in(self, db):
        result = db.run("SELECT name FROM emp WHERE dept IN (SELECT id FROM dept)")
        assert rows(result) == [("ann",), ("bob",), ("cat",)]

    def test_not_in_with_null_in_subquery(self, db):
        # dept contains no NULL; emp.dept does. NOT IN over a set
        # containing no NULLs: NULL operand -> unknown -> filtered.
        result = db.run("SELECT name FROM emp WHERE dept NOT IN (SELECT id FROM dept WHERE id > 10)")
        assert rows(result) == [("ann",), ("bob",)]

    def test_not_in_null_poisoning(self, db):
        # A NULL in the subquery makes NOT IN never true.
        result = db.run(
            "SELECT name FROM emp WHERE salary NOT IN (SELECT dept FROM emp)"
        )
        assert result.rows == []

    def test_correlated_in(self, db):
        result = db.run(
            "SELECT dname FROM dept WHERE id IN "
            "(SELECT dept FROM emp WHERE emp.salary > 150 AND emp.dept = dept.id)"
        )
        assert rows(result) == [("eng",), ("ops",)]


class TestQuantified:
    def test_gt_all(self, db):
        result = db.run(
            "SELECT name FROM emp WHERE salary > ALL (SELECT salary FROM emp WHERE dept = 10)"
        )
        assert result.rows == [("cat",)]

    def test_gt_any(self, db):
        result = db.run(
            "SELECT name FROM emp WHERE salary > ANY (SELECT salary FROM emp WHERE dept = 10)"
        )
        assert rows(result) == [("bob",), ("cat",), ("dan",)]

    def test_all_over_empty_is_true(self, db):
        assert len(db.run(
            "SELECT name FROM emp WHERE salary > ALL (SELECT salary FROM emp WHERE id = 99)"
        )) == 4

    def test_any_over_empty_is_false(self, db):
        assert db.run(
            "SELECT name FROM emp WHERE salary > ANY (SELECT salary FROM emp WHERE id = 99)"
        ).rows == []

    def test_eq_any_is_in(self, db):
        in_result = db.run("SELECT name FROM emp WHERE dept IN (SELECT id FROM dept)")
        any_result = db.run("SELECT name FROM emp WHERE dept = ANY (SELECT id FROM dept)")
        assert rows(in_result) == rows(any_result)


class TestNesting:
    def test_two_levels_of_correlation(self, db):
        result = db.run(
            "SELECT dname FROM dept d WHERE EXISTS ("
            "  SELECT 1 FROM emp e WHERE e.dept = d.id AND e.salary = ("
            "    SELECT max(salary) FROM emp e2 WHERE e2.dept = d.id))"
        )
        assert rows(result) == [("eng",), ("ops",)]

    def test_subquery_in_from_with_subquery_in_where(self, db):
        result = db.run(
            "SELECT t.name FROM (SELECT name, salary FROM emp WHERE salary > 100) AS t "
            "WHERE t.salary < (SELECT max(salary) FROM emp)"
        )
        assert rows(result) == [("bob",), ("dan",)]

    def test_exists_inside_case(self, db):
        result = db.run(
            "SELECT dname, CASE WHEN EXISTS (SELECT 1 FROM emp WHERE emp.dept = dept.id) "
            "THEN 'staffed' ELSE 'empty' END FROM dept"
        )
        lookup = dict(result.rows)
        assert lookup["eng"] == "staffed" and lookup["empty"] == "empty"
