"""Unit tests for the length-prefixed JSON wire protocol."""

from __future__ import annotations

import json
import math
import struct

import pytest

from repro import errors
from repro.server import protocol


class TestFraming:
    def test_round_trip(self):
        frame = protocol.encode_frame({"op": "query", "sql": "SELECT 1"})
        length = protocol.frame_length(frame[: protocol.HEADER_SIZE])
        body = frame[protocol.HEADER_SIZE :]
        assert length == len(body)
        assert protocol.decode_body(body) == {"op": "query", "sql": "SELECT 1"}

    def test_header_is_big_endian_length(self):
        frame = protocol.encode_frame({"a": 1})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4

    def test_announced_oversized_frame_is_refused(self):
        header = struct.pack(">I", protocol.MAX_FRAME_BYTES + 1)
        with pytest.raises(errors.OperationalError, match="limit"):
            protocol.frame_length(header)

    def test_non_object_body_is_refused(self):
        with pytest.raises(errors.ProgrammingError, match="JSON object"):
            protocol.decode_body(json.dumps([1, 2, 3]).encode())

    def test_unicode_survives(self):
        message = {"sql": "SELECT 'déjà vu ✓'"}
        frame = protocol.encode_frame(message)
        assert protocol.decode_body(frame[4:]) == message


class TestErrors:
    @pytest.mark.parametrize(
        "exc_type",
        [
            errors.ProgrammingError,
            errors.OperationalError,
            errors.SerializationError,
            errors.IntegrityError,
            errors.ServerBusy,
        ],
    )
    def test_error_round_trip_preserves_class(self, exc_type):
        payload = protocol.error_response(exc_type("boom"))
        assert payload["ok"] is False
        revived = protocol.exception_from_payload(payload["error"])
        assert type(revived) is exc_type
        assert "boom" in str(revived)

    def test_retryable_flags(self):
        assert protocol.error_response(errors.SerializationError("x"))["error"][
            "retryable"
        ]
        assert protocol.error_response(errors.ServerBusy("x"))["error"]["retryable"]
        assert not protocol.error_response(errors.ProgrammingError("x"))["error"][
            "retryable"
        ]

    def test_non_perm_exception_wraps_as_operational(self):
        payload = protocol.error_response(ValueError("internal"))
        assert payload["error"]["type"] == "OperationalError"
        revived = protocol.exception_from_payload(payload["error"])
        assert isinstance(revived, errors.OperationalError)

    def test_unknown_class_name_falls_back_to_operational(self):
        revived = protocol.exception_from_payload(
            {"type": "NoSuchError", "message": "m"}
        )
        assert isinstance(revived, errors.OperationalError)


class TestRows:
    def test_rows_round_trip(self):
        rows = [(1, "a", None, 2.5, True)]
        assert protocol.rows_from_wire(protocol.rows_to_wire(rows)) == rows

    def test_missing_rows_decode_empty(self):
        assert protocol.rows_from_wire(None) == []


def _strict_loads(body: bytes):
    """An RFC 8259 parser: rejects the ``Infinity``/``NaN`` extensions
    Python's default decoder quietly accepts."""

    def refuse(token):
        raise ValueError(f"non-standard JSON token {token!r}")

    return json.loads(body.decode("utf-8"), parse_constant=refuse)


class TestNonFiniteFloats:
    """Regression: float overflow results (``SELECT 1e308 * 10``) used to
    be serialized as bare ``Infinity`` tokens, which no strict JSON
    parser — i.e. any non-Python client — could decode."""

    VALUES = [float("inf"), float("-inf"), float("nan"), 0.0, -2.5, 1e308]

    def test_rows_with_non_finite_floats_round_trip(self):
        rows = [tuple(self.VALUES)]
        decoded = protocol.rows_from_wire(protocol.rows_to_wire(rows))
        assert decoded[0][:2] == (float("inf"), float("-inf"))
        assert math.isnan(decoded[0][2])
        assert decoded[0][3:] == (0.0, -2.5, 1e308)

    def test_every_frame_is_strict_rfc8259(self):
        frame = protocol.encode_frame(
            {"ok": True, "rows": protocol.rows_to_wire([tuple(self.VALUES)])}
        )
        message = _strict_loads(frame[protocol.HEADER_SIZE :])
        assert message["rows"][0][0] == {"$f": "inf"}
        assert message["rows"][0][2] == {"$f": "nan"}

    def test_untagged_non_finite_float_is_refused_not_emitted(self):
        # The belt-and-suspenders check: if a value-carrying field ever
        # skips the tagging codec, the frame encoder must refuse loudly
        # rather than emit a bare Infinity token.
        with pytest.raises(errors.OperationalError, match="JSON-encodable"):
            protocol.encode_frame({"oops": float("inf")})

    def test_params_round_trip_positional_and_named(self):
        positional = [1, float("inf"), "x"]
        named = {"a": float("-inf"), "b": None}
        wire_p = protocol.params_to_wire(positional)
        wire_n = protocol.params_to_wire(named)
        _strict_loads(json.dumps(wire_p, allow_nan=False).encode())
        _strict_loads(json.dumps(wire_n, allow_nan=False).encode())
        assert protocol.params_from_wire(wire_p) == [1, float("inf"), "x"]
        assert protocol.params_from_wire(wire_n) == {"a": float("-inf"), "b": None}

    def test_params_none_passes_through(self):
        assert protocol.params_to_wire(None) is None
        assert protocol.params_from_wire(None) is None

    def test_unknown_tag_is_refused(self):
        with pytest.raises(errors.TypeCheckError):
            protocol.rows_from_wire([[{"$f": "imaginary"}]])
