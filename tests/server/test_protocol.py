"""Unit tests for the length-prefixed JSON wire protocol."""

from __future__ import annotations

import json
import struct

import pytest

from repro import errors
from repro.server import protocol


class TestFraming:
    def test_round_trip(self):
        frame = protocol.encode_frame({"op": "query", "sql": "SELECT 1"})
        length = protocol.frame_length(frame[: protocol.HEADER_SIZE])
        body = frame[protocol.HEADER_SIZE :]
        assert length == len(body)
        assert protocol.decode_body(body) == {"op": "query", "sql": "SELECT 1"}

    def test_header_is_big_endian_length(self):
        frame = protocol.encode_frame({"a": 1})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4

    def test_announced_oversized_frame_is_refused(self):
        header = struct.pack(">I", protocol.MAX_FRAME_BYTES + 1)
        with pytest.raises(errors.OperationalError, match="limit"):
            protocol.frame_length(header)

    def test_non_object_body_is_refused(self):
        with pytest.raises(errors.ProgrammingError, match="JSON object"):
            protocol.decode_body(json.dumps([1, 2, 3]).encode())

    def test_unicode_survives(self):
        message = {"sql": "SELECT 'déjà vu ✓'"}
        frame = protocol.encode_frame(message)
        assert protocol.decode_body(frame[4:]) == message


class TestErrors:
    @pytest.mark.parametrize(
        "exc_type",
        [
            errors.ProgrammingError,
            errors.OperationalError,
            errors.SerializationError,
            errors.IntegrityError,
            errors.ServerBusy,
        ],
    )
    def test_error_round_trip_preserves_class(self, exc_type):
        payload = protocol.error_response(exc_type("boom"))
        assert payload["ok"] is False
        revived = protocol.exception_from_payload(payload["error"])
        assert type(revived) is exc_type
        assert "boom" in str(revived)

    def test_retryable_flags(self):
        assert protocol.error_response(errors.SerializationError("x"))["error"][
            "retryable"
        ]
        assert protocol.error_response(errors.ServerBusy("x"))["error"]["retryable"]
        assert not protocol.error_response(errors.ProgrammingError("x"))["error"][
            "retryable"
        ]

    def test_non_perm_exception_wraps_as_operational(self):
        payload = protocol.error_response(ValueError("internal"))
        assert payload["error"]["type"] == "OperationalError"
        revived = protocol.exception_from_payload(payload["error"])
        assert isinstance(revived, errors.OperationalError)

    def test_unknown_class_name_falls_back_to_operational(self):
        revived = protocol.exception_from_payload(
            {"type": "NoSuchError", "message": "m"}
        )
        assert isinstance(revived, errors.OperationalError)


class TestRows:
    def test_rows_round_trip(self):
        rows = [(1, "a", None, 2.5, True)]
        assert protocol.rows_from_wire(protocol.rows_to_wire(rows)) == rows

    def test_missing_rows_decode_empty(self):
        assert protocol.rows_from_wire(None) == []
