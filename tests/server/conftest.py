"""Server-test fixtures: a live server on an ephemeral port per test."""

from __future__ import annotations

import pytest

from repro.engine.database import Database
from repro.server import PermServer, ServerClient, ServerThread


@pytest.fixture
def server():
    """A running server on an ephemeral port (row-level conflicts)."""
    instance = PermServer(database=Database(), max_workers=4)
    with ServerThread(instance) as handle:
        yield handle.server


@pytest.fixture
def client(server):
    """A connected client against the per-test server."""
    with ServerClient("127.0.0.1", server.port) as c:
        yield c
