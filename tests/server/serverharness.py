"""Shared helpers for the server test suite."""

from __future__ import annotations

import time

from repro.server import PermServer, ServerClient


def connect(server: PermServer, **kwargs) -> ServerClient:
    """A client against a running per-test server."""
    return ServerClient("127.0.0.1", server.port, **kwargs)


def wait_until(predicate, timeout=10.0, interval=0.01):
    """Poll ``predicate`` until true or ``timeout`` elapses."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()
