"""Concurrency tests over real sockets: admission control, abrupt
disconnects, and a bank-invariant transfer stress with many clients."""

from __future__ import annotations

import random
import threading

import pytest

from repro import errors
from repro.engine.database import Database
from repro.server import PermServer, ServerThread
from repro.server.session import Session
from serverharness import connect, wait_until


class TestAdmissionControl:
    def test_session_limit_rejects_with_server_busy(self):
        server = PermServer(database=Database(), max_sessions=1, max_workers=2)
        with ServerThread(server):
            with connect(server) as first:
                first.query("SELECT 1")
                with pytest.raises(errors.ServerBusy, match="session limit"):
                    connect(server)
                assert server.stats.sessions_rejected == 1
            # The slot frees once the first session tears down.
            assert wait_until(lambda: server.stats.sessions_open == 0)
            with connect(server) as again:
                assert again.query("SELECT 1").rows == [(1,)]

    def test_pending_limit_rejects_but_session_survives(self, monkeypatch):
        """With one slow request in flight and max_pending=1, the next
        request gets ServerBusy — and succeeds on retry afterwards."""
        release = threading.Event()
        entered = threading.Event()
        original = Session.handle

        def slow_handle(self, message):
            if message.get("sql") == "SELECT 'slow'":
                entered.set()
                release.wait(timeout=30)
            return original(self, message)

        monkeypatch.setattr(Session, "handle", slow_handle)
        server = PermServer(database=Database(), max_pending=1, max_workers=4)
        with ServerThread(server):
            slow = connect(server)
            fast = connect(server)
            worker = threading.Thread(target=slow.query, args=("SELECT 'slow'",))
            worker.start()
            try:
                assert entered.wait(timeout=10)
                with pytest.raises(errors.ServerBusy, match="queue is full"):
                    fast.query("SELECT 1")
                assert server.stats.busy_rejections == 1
            finally:
                release.set()
                worker.join(timeout=30)
            # Rejection did not kill the session: the retry succeeds.
            assert fast.query("SELECT 1").rows == [(1,)]
            slow.close()
            fast.close()


class TestDisconnect:
    def test_abrupt_disconnect_rolls_back_open_transaction(self, server):
        with connect(server) as setup:
            setup.query("CREATE TABLE t (a int, b int)")
            setup.query("INSERT INTO t VALUES (1, 0)")
        victim = connect(server)
        victim.begin()
        victim.query("UPDATE t SET b = 99 WHERE a = 1")
        victim.disconnect()  # no CLOSE handshake
        assert wait_until(lambda: server.stats.sessions_open == 0)
        with connect(server) as observer:
            # The abandoned write is gone...
            assert observer.query("SELECT b FROM t").rows == [(0,)]
            # ...and its snapshot no longer pins anything: a conflicting
            # write on the same row commits cleanly.
            observer.begin()
            observer.query("UPDATE t SET b = 1 WHERE a = 1")
            observer.commit()
            assert observer.query("SELECT b FROM t").rows == [(1,)]
        assert server.stats.disconnects >= 1

    def test_mid_query_disconnect_rolls_back_and_frees_slot(self, monkeypatch):
        """Dropping the socket while a query is still executing on the
        worker pool must also roll back and free the session slot."""
        entered = threading.Event()
        release = threading.Event()
        original = Session.handle

        def slow_handle(self, message):
            if message.get("sql") == "SELECT 'slow'":
                entered.set()
                release.wait(timeout=30)
            return original(self, message)

        monkeypatch.setattr(Session, "handle", slow_handle)
        server = PermServer(database=Database(), max_sessions=1, max_workers=2)
        with ServerThread(server):
            with connect(server) as setup:
                setup.query("CREATE TABLE t (a int)")
                setup.query("INSERT INTO t VALUES (1)")
            assert wait_until(lambda: server.stats.sessions_open == 0)
            victim = connect(server)
            victim.begin()
            victim.query("UPDATE t SET a = 99")
            def send_slow() -> None:
                try:
                    victim.request({"op": "query", "sql": "SELECT 'slow'"})
                except (errors.PermError, OSError):
                    pass  # the disconnect races the response; both are fine

            sender = threading.Thread(target=send_slow)
            sender.daemon = True
            sender.start()
            assert entered.wait(timeout=10)
            victim.disconnect()  # mid-query: the handler is still running
            release.set()
            sender.join(timeout=30)
            assert wait_until(lambda: server.stats.sessions_open == 0)
            with connect(server) as observer:  # slot is free again
                assert observer.query("SELECT a FROM t").rows == [(1,)]

    def test_disconnect_frees_the_session_slot(self):
        server = PermServer(database=Database(), max_sessions=1, max_workers=2)
        with ServerThread(server):
            gone = connect(server)
            gone.query("SELECT 1")
            gone.disconnect()
            assert wait_until(lambda: server.stats.sessions_open == 0)
            with connect(server) as next_one:
                assert next_one.query("SELECT 1").rows == [(1,)]


class TestBankStress:
    """Concurrent transfers between accounts through real sockets must
    preserve the total balance — the classic snapshot-isolation bank
    invariant, here exercised end-to-end through the wire protocol."""

    ACCOUNTS = 8
    CLIENTS = 6
    TRANSFERS = 12

    def test_concurrent_transfers_preserve_total(self, server):
        with connect(server) as setup:
            setup.query("CREATE TABLE accounts (id int, balance int)")
            for i in range(self.ACCOUNTS):
                setup.query("INSERT INTO accounts VALUES (?, ?)", [i, 100])
        total = self.ACCOUNTS * 100
        failures: list[BaseException] = []

        def worker(seed: int) -> None:
            rng = random.Random(seed)
            try:
                with connect(server) as c:
                    done = 0
                    while done < self.TRANSFERS:
                        src, dst = rng.sample(range(self.ACCOUNTS), 2)
                        amount = rng.randint(1, 10)
                        try:
                            c.begin()
                            c.query(
                                "UPDATE accounts SET balance = balance - ? WHERE id = ?",
                                [amount, src],
                            )
                            c.query(
                                "UPDATE accounts SET balance = balance + ? WHERE id = ?",
                                [amount, dst],
                            )
                            c.commit()
                            done += 1
                        except (errors.SerializationError, errors.ServerBusy):
                            try:
                                c.rollback()
                            except errors.PermError:
                                pass
            except BaseException as exc:  # noqa: BLE001 - reported below
                failures.append(exc)

        threads = [
            threading.Thread(target=worker, args=(seed,))
            for seed in range(self.CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not failures, failures
        with connect(server) as check:
            rows = check.query("SELECT SUM(balance) FROM accounts").rows
            assert rows == [(total,)]
            stats = check.stats()
            assert (
                stats["server"]["queries"]
                >= self.CLIENTS * self.TRANSFERS * 2
            )
