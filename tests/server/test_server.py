"""Integration tests: one client, a live server, the full op surface."""

from __future__ import annotations

import pytest

from repro import errors
from repro.server import ServerClient

from serverharness import connect


class TestHello:
    def test_hello_reports_identity(self, client):
        from repro.engine.connection import resolve_engine

        info = client.server_info
        assert info["server"] == "repro"
        assert info["protocol"] == 1
        # The server default follows the environment ($REPRO_ENGINE).
        assert info["engine"] == resolve_engine(None)
        assert info["autocommit"] is True

    def test_hello_chooses_engine(self, server):
        with connect(server, engine="vectorized") as c:
            assert c.server_info["engine"] == "vectorized"

    def test_hello_rejects_unknown_engine(self, server):
        with pytest.raises(errors.ProgrammingError):
            connect(server, engine="gpu")

    def test_hello_after_a_statement_is_an_error(self, client):
        client.query("SELECT 1")
        with pytest.raises(errors.OperationalError, match="HELLO must precede"):
            client.request({"op": "hello", "engine": "row"})

    def test_hello_is_optional(self, server):
        with connect(server, hello=False) as c:
            assert c.query("SELECT 1 + 1").rows == [(2,)]


class TestQueries:
    def test_ddl_dml_select(self, client):
        client.query("CREATE TABLE t (a int, b text)")
        result = client.query("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert result.rowcount == 2
        result = client.query("SELECT * FROM t ORDER BY a")
        assert result.columns == ["a", "b"]
        assert result.rows == [(1, "x"), (2, "y")]

    def test_params(self, client):
        client.query("CREATE TABLE t (a int)")
        client.query("INSERT INTO t VALUES (?), (?)", [1, 2])
        assert client.query("SELECT a FROM t WHERE a > ?", [1]).rows == [(2,)]

    def test_bad_params_type_is_rejected(self, client):
        with pytest.raises(errors.ProgrammingError, match="params"):
            client.request({"op": "query", "sql": "SELECT ?", "params": "oops"})

    def test_provenance_query_marks_attrs(self, client):
        client.query("CREATE TABLE t (a int)")
        client.query("INSERT INTO t VALUES (7)")
        result = client.query("SELECT PROVENANCE * FROM t")
        assert result.provenance_attrs == ("prov_t_a",)
        assert result.rows == [(7, 7)]

    def test_error_keeps_the_session_alive(self, client):
        with pytest.raises(errors.AnalyzeError, match="no_such_table"):
            client.query("SELECT * FROM no_such_table")
        assert client.query("SELECT 1").rows == [(1,)]

    def test_empty_sql_is_rejected(self, client):
        with pytest.raises(errors.ProgrammingError, match="non-empty"):
            client.query("   ")

    def test_unknown_op_is_rejected(self, client):
        with pytest.raises(errors.ProgrammingError, match="unknown protocol op"):
            client.request({"op": "moonwalk"})

    def test_non_finite_floats_cross_the_wire(self, client):
        """Regression: ``SELECT 1e308 * 10`` overflows to infinity, which
        used to serialize as a bare ``Infinity`` token and break strict
        clients; now it travels tagged and decodes back to the float."""
        assert client.query("SELECT 1e308 * 10").rows == [(float("inf"),)]
        assert client.query("SELECT 0 - 1e308 * 10").rows == [(float("-inf"),)]
        # Parameters carry them too (NaN itself stays a protocol-level
        # concern — the sqlite backend stores NaN as NULL, a documented
        # engine divergence — so the table round trip uses infinities).
        client.query("CREATE TABLE f (x float)")
        client.query("INSERT INTO f VALUES (?), (?)", [float("inf"), 2.5])
        rows = client.query("SELECT x FROM f ORDER BY x").rows
        assert [value for (value,) in rows] == [2.5, float("inf")]


class TestPrepared:
    def test_prepare_execute(self, client):
        client.query("CREATE TABLE t (a int, b text)")
        client.query("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        handle = client.prepare("SELECT b FROM t WHERE a = ?")
        assert handle.parameters == 1
        assert handle.columns == ["b"]
        assert handle.execute([1]).rows == [("x",)]
        assert handle.execute([2]).rows == [("y",)]

    def test_unknown_handle_is_rejected(self, client):
        with pytest.raises(errors.ProgrammingError, match="handle"):
            client.request({"op": "execute", "handle": 404})


class TestTransactions:
    def test_begin_commit_over_the_wire(self, server, client):
        client.query("CREATE TABLE t (a int)")
        client.begin()
        client.query("INSERT INTO t VALUES (1)")
        client.commit()
        with connect(server) as other:
            assert other.query("SELECT a FROM t").rows == [(1,)]

    def test_rollback_over_the_wire(self, client):
        client.query("CREATE TABLE t (a int)")
        client.query("INSERT INTO t VALUES (1)")
        client.begin()
        client.query("UPDATE t SET a = 99")
        client.rollback()
        assert client.query("SELECT a FROM t").rows == [(1,)]

    def test_uncommitted_writes_are_invisible_to_other_sessions(self, server, client):
        client.query("CREATE TABLE t (a int)")
        client.begin()
        client.query("INSERT INTO t VALUES (1)")
        with connect(server) as other:
            assert other.query("SELECT a FROM t").rows == []
        client.commit()

    def test_ddl_inside_transaction_is_rejected(self, client):
        client.begin()
        with pytest.raises(errors.OperationalError, match="DDL is not transactional"):
            client.query("CREATE TABLE t (a int)")
        client.rollback()

    def test_serialization_conflict_reaches_the_client(self, server, client):
        client.query("CREATE TABLE t (a int, b int)")
        client.query("INSERT INTO t VALUES (1, 0)")
        with connect(server) as other:
            client.begin()
            other.begin()
            client.query("UPDATE t SET b = 1 WHERE a = 1")
            other.query("UPDATE t SET b = 2 WHERE a = 1")
            client.commit()
            with pytest.raises(errors.SerializationError):
                other.commit()


class TestStats:
    def test_stats_shape(self, client):
        client.query("CREATE TABLE t (a int)")
        client.query("INSERT INTO t VALUES (1)")
        client.query("SELECT * FROM t")
        stats = client.stats()
        assert stats["session"]["queries"] == 3
        assert stats["session"]["errors"] == 0
        assert stats["session"]["latency"]["count"] >= 2
        assert stats["session"]["latency"]["p50_ms"] is not None
        assert stats["server"]["queries"] >= 3
        assert stats["server"]["sessions_open"] == 1
        assert stats["server"]["granularity"] == "row"
        assert set(stats["gc"]) >= {"gc_runs", "versions_freed", "rows_freed"}
        # Durability counters ride along; the default test server is
        # in-memory, which the stats must say explicitly.
        assert stats["wal"] == {"enabled": False}
        # Materialized-view bookkeeping is always present (empty here).
        assert stats["matviews"]["views"] == {}

    def test_stats_report_matview_freshness(self, client):
        client.query("CREATE TABLE t (a int, g text)")
        client.query("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        client.query(
            "CREATE MATERIALIZED VIEW mv AS "
            "SELECT g, count(*) AS n FROM t GROUP BY g"
        )
        matviews = client.stats()["matviews"]
        assert matviews["views"]["mv"] == {
            "rows": 2,
            "stale": False,
            "delta_safe": False,
            "with_provenance": False,
        }
        client.query("INSERT INTO t VALUES (3, 'x')")
        assert client.stats()["matviews"]["views"]["mv"]["stale"] is True
        assert client.stats()["matviews"]["stale_marks"] >= 1
        client.query("REFRESH MATERIALIZED VIEW mv")
        assert client.stats()["matviews"]["views"]["mv"]["stale"] is False

    def test_stats_count_errors_and_conflicts(self, server, client):
        with pytest.raises(errors.AnalyzeError):
            client.query("SELECT * FROM ghost")
        client.query("CREATE TABLE t (a int, b int)")
        client.query("INSERT INTO t VALUES (1, 0)")
        with connect(server) as other:
            client.begin()
            other.begin()
            client.query("UPDATE t SET b = 1 WHERE a = 1")
            other.query("UPDATE t SET b = 2 WHERE a = 1")
            client.commit()
            with pytest.raises(errors.SerializationError):
                other.commit()
            other_stats = other.stats()
            assert other_stats["session"]["conflicts"] == 1
        stats = client.stats()
        assert stats["session"]["errors"] == 1
        assert stats["server"]["conflicts"] >= 1


class TestLifecycle:
    def test_close_handshake(self, server):
        c = connect(server)
        c.query("SELECT 1")
        c.close()
        c.close()  # idempotent
        with pytest.raises(errors.OperationalError):
            c.query("SELECT 1")

    def test_sessions_get_distinct_ids(self, server):
        with connect(server) as a, connect(server) as b:
            assert a.server_info["session"] != b.server_info["session"]


class TestCli:
    def test_repro_serve_subcommand_parses(self):
        from repro.server.__main__ import build_parser

        args = build_parser().parse_args(
            ["--port", "0", "--granularity", "table", "--max-sessions", "4"]
        )
        assert args.port == 0
        assert args.granularity == "table"
        assert args.max_sessions == 4
