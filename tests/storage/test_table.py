"""Storage tests: heap table mutation, coercion, Relation helpers."""

from __future__ import annotations

import pytest

from repro.catalog.schema import schema_of
from repro.datatypes import SQLType as T
from repro.errors import CatalogError
from repro.storage.table import HeapTable, Relation


@pytest.fixture
def table():
    t = HeapTable("t", schema_of(("a", T.INT), ("b", T.TEXT)))
    t.insert_many([(1, "x"), (2, "y"), (3, None)])
    return t


class TestHeapTable:
    def test_insert_and_len(self, table):
        assert len(table) == 3
        table.insert((4, "z"))
        assert len(table) == 4

    def test_arity_checked(self, table):
        with pytest.raises(CatalogError, match="3 values"):
            table.insert((1, "x", 9))

    def test_coercion_int_to_float_column(self):
        t = HeapTable("f", schema_of(("x", T.FLOAT),))
        t.insert((1,))
        assert t.rows[0][0] == 1.0 and isinstance(t.rows[0][0], float)

    def test_coercion_text_to_int(self):
        t = HeapTable("i", schema_of(("x", T.INT),))
        t.insert(("42",))
        assert t.rows[0][0] == 42

    def test_nulls_allowed_anywhere(self, table):
        table.insert((None, None))
        assert table.rows[-1] == (None, None)

    def test_delete_where(self, table):
        removed = table.delete_where(lambda row: row[0] >= 2)
        assert removed == 2
        assert [r[0] for r in table.rows] == [1]

    def test_update_where(self, table):
        changed = table.update_where(
            lambda row: row[1] == "x", lambda row: (row[0] + 10, row[1])
        )
        assert changed == 1
        assert table.rows[0] == (11, "x")

    def test_version_bumps_only_on_change(self, table):
        version = table.version
        table.delete_where(lambda row: False)
        assert table.version == version
        table.delete_where(lambda row: row[0] == 1)
        assert table.version > version

    def test_truncate(self, table):
        table.truncate()
        assert len(table) == 0


class TestRelation:
    def test_provenance_split(self):
        relation = Relation(
            schema_of(("a", T.INT), ("prov_t_a", T.INT)),
            [(1, 1)],
            provenance_attrs=("prov_t_a",),
        )
        assert relation.original_attrs == ["a"]
        assert relation.provenance_attrs == ("prov_t_a",)

    def test_column_access(self):
        relation = Relation(schema_of(("a", T.INT), ("b", T.TEXT)), [(1, "x"), (2, "y")])
        assert relation.column("b") == ["x", "y"]

    def test_as_dicts(self):
        relation = Relation(schema_of(("a", T.INT),), [(1,)])
        assert relation.as_dicts() == [{"a": 1}]

    def test_sorted_is_deterministic(self):
        relation = Relation(schema_of(("a", T.INT),), [(3,), (None,), (1,)])
        assert relation.sorted().rows == [(1,), (3,), (None,)]

    def test_format_contains_header_and_count(self):
        relation = Relation(schema_of(("a", T.INT),), [(1,), (2,)])
        text = relation.format()
        assert "a" in text and "(2 rows)" in text

    def test_format_truncation(self):
        relation = Relation(schema_of(("a", T.INT),), [(i,) for i in range(10)])
        text = relation.format(max_rows=3)
        assert "7 more rows" in text

    def test_equality(self):
        schema = schema_of(("a", T.INT),)
        assert Relation(schema, [(1,)]) == Relation(schema, [(1,)])
        assert Relation(schema, [(1,)]) != Relation(schema, [(2,)])
