"""Crash-matrix harness: a seeded writer, its oracle, and kill plumbing.

The *writer* applies a deterministic sequence of single-writer
transactions to a persistent database: transaction ``k`` reads the
committed ids, then (seeded by ``(seed, k)``) updates some rows, deletes
some, inserts fresh ones keyed ``k*10+j`` — and always inserts ``k``
into a ``progress`` table inside the same transaction, so the set of
durable commits is readable back as a contiguous prefix ``1..M``.

The *oracle* (:func:`expected_state`) replays the same plan purely in
Python: after any prefix of ``M`` committed transactions the data table
must equal ``expected_state(seed, M)`` exactly. Because every commit is
atomic and the WAL is a prefix log, a kill at ANY byte offset must
recover to ``expected_state(seed, M)`` for some ``M`` — with no holes
in ``progress`` (no lost middle commit) and no duplicates (no commit
applied twice).

Run as a script, this module *is* the writer subprocess
(``python crashharness.py DATA_DIR SEED START COUNT DURABILITY``). It
prints ``S <stamp>`` after recovery and ``C <k> <stamp>`` (flushed)
after each commit, so the parent knows a lower bound on what must
survive a SIGKILL under fsync durability.
"""

from __future__ import annotations

import os
import random
import shutil
import signal
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC_DIR = os.path.join(REPO_ROOT, "src")
FAILURE_DIR = os.path.join(REPO_ROOT, ".recovery-failures")


# ---------------------------------------------------------------------------
# The deterministic transaction plan (shared by writer and oracle)
# ---------------------------------------------------------------------------

def plan_txn(ids: list[int], seed: int, k: int):
    """What transaction *k* does, given the committed ids it sees.
    Pure: the writer turns this into SQL, the oracle into dict ops."""
    rng = random.Random(seed * 1_000_003 + k)
    updates = [(rid, rng.randint(1, 9)) for rid in ids if rng.random() < 0.25]
    deletes = [rid for rid in ids if rng.random() < 0.12]
    inserts = [(k * 10 + j, rng.randint(0, 99)) for j in range(rng.randint(1, 3))]
    return updates, deletes, inserts


def apply_txn(state: dict[int, int], seed: int, k: int) -> None:
    updates, deletes, inserts = plan_txn(sorted(state), seed, k)
    for rid, delta in updates:
        if rid in state:
            state[rid] += delta
    for rid in deletes:
        state.pop(rid, None)
    for rid, value in inserts:
        state[rid] = value


def expected_state(seed: int, upto: int) -> dict[int, int]:
    """The oracle: table contents after commits ``1..upto``."""
    state: dict[int, int] = {}
    for k in range(1, upto + 1):
        apply_txn(state, seed, k)
    return state


# ---------------------------------------------------------------------------
# Parent-side helpers
# ---------------------------------------------------------------------------

def read_recovered(data_dir: str):
    """Open the directory, return ``(M, state, db)`` where ``M`` is the
    contiguous committed prefix length and ``state`` the data table as a
    dict. Asserts the prefix property (no holes, no duplicates). The
    caller must close the returned database."""
    from repro.engine.database import Database

    db = Database(path=data_dir)
    conn = db.connect()
    if db.catalog.has_table("progress"):
        ks = [row[0] for row in conn.run("SELECT k FROM progress ORDER BY k").rows]
    else:
        ks = []
    assert ks == list(range(1, len(ks) + 1)), (
        f"committed transactions are not a contiguous prefix: {ks}"
    )
    if db.catalog.has_table("t"):
        state = dict(conn.run("SELECT id, val FROM t ORDER BY id").rows)
    else:
        state = {}
    return len(ks), state, db


def verify_recovered(data_dir: str, seed: int, context: str = "") -> int:
    """Recover and check the oracle property; dumps the directory under
    ``.recovery-failures/`` on mismatch. Returns the prefix length."""
    try:
        count, state, db = read_recovered(data_dir)
        try:
            expected = expected_state(seed, count)
            assert state == expected, (
                f"recovered state diverges from oracle after {count} commits "
                f"({context}): extra={sorted(set(state) - set(expected))} "
                f"missing={sorted(set(expected) - set(state))} "
                f"changed={[r for r in state if r in expected and state[r] != expected[r]]}"
            )
        finally:
            db.close()
        return count
    except AssertionError:
        os.makedirs(FAILURE_DIR, exist_ok=True)
        dump = os.path.join(FAILURE_DIR, f"seed{seed}-{int(time.time() * 1000)}")
        shutil.copytree(data_dir, dump, dirs_exist_ok=True)
        print(f"\nrecovery failure reproduced in {dump}", file=sys.stderr)
        raise


def spawn_writer(
    data_dir: str, seed: int, start: int, count: int, durability: str
) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable,
            os.path.abspath(__file__),
            data_dir,
            str(seed),
            str(start),
            str(count),
            durability,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def kill_after_acks(proc: subprocess.Popen, acks: int, delay: float = 0.0):
    """Read the writer's stdout until *acks* commit acknowledgements,
    then SIGKILL it (after an optional tiny delay so the kill lands at
    a less synchronized byte offset). Returns the acknowledged commits
    as ``[(k, stamp), ...]`` and whether the writer finished first."""
    acked: list[tuple[int, int]] = []
    finished = False
    assert proc.stdout is not None
    while True:
        line = proc.stdout.readline()
        if not line:
            finished = True
            break
        parts = line.split()
        if parts and parts[0] == "C":
            acked.append((int(parts[1]), int(parts[2])))
            if len(acked) >= acks:
                break
        elif parts and parts[0] == "DONE":
            finished = True
            break
    if not finished:
        if delay:
            time.sleep(delay)
        proc.kill()
    proc.wait(timeout=30)
    if proc.stdout is not None:
        proc.stdout.close()
    if proc.stderr is not None:
        proc.stderr.close()
    return acked, finished


# ---------------------------------------------------------------------------
# The writer subprocess
# ---------------------------------------------------------------------------

def writer_main(argv: list[str]) -> int:
    data_dir, seed, start, count, durability = (
        argv[0],
        int(argv[1]),
        int(argv[2]),
        int(argv[3]),
        argv[4],
    )
    sys.path.insert(0, SRC_DIR)
    from repro.engine.database import Database
    from repro.storage import mvcc

    db = Database(path=data_dir, durability=durability)
    conn = db.connect()
    print(f"S {mvcc.current_stamp()}", flush=True)
    if not db.catalog.has_table("t"):
        conn.run("CREATE TABLE t (id int, val int)")
        conn.run("CREATE TABLE progress (k int)")
    cursor = conn.cursor()
    for k in range(start, start + count):
        ids = [row[0] for row in conn.run("SELECT id FROM t ORDER BY id").rows]
        updates, deletes, inserts = plan_txn(ids, seed, k)
        conn.run("BEGIN")
        for rid, delta in updates:
            cursor.execute("UPDATE t SET val = val + ? WHERE id = ?", (delta, rid))
        for rid in deletes:
            cursor.execute("DELETE FROM t WHERE id = ?", (rid,))
        for rid, value in inserts:
            cursor.execute("INSERT INTO t VALUES (?, ?)", (rid, value))
        cursor.execute("INSERT INTO progress VALUES (?)", (k,))
        conn.run("COMMIT")
        print(f"C {k} {mvcc.current_stamp()}", flush=True)
    db.close()
    print("DONE", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(writer_main(sys.argv[1:]))
