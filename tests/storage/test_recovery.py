"""Durability and crash recovery: the WAL/checkpoint layer.

The central property: **a kill at any byte offset recovers exactly the
committed prefix.** Three attack surfaces cover it:

* a deterministic truncation matrix — build a WAL, then recover from a
  copy truncated at every interesting byte offset (mid-header,
  mid-payload, missing commit marker, plus seeded random offsets) and
  at a corrupted (bit-flipped) record;
* a subprocess kill matrix — a seeded writer is SIGKILLed mid-commit at
  random points (including while inside fsync) and the survivor must
  equal the transaction oracle's committed prefix, with every
  acknowledged fsync-durable commit present;
* a recover→write→crash loop asserting replay idempotence: version
  stamps stay monotone across restarts and no committed transaction is
  ever applied twice.

``REPRO_CRASH_SEEDS`` widens the seed bank (the CI crash-recovery job
runs more); failures dump the data directory under
``.recovery-failures/`` for deterministic replay.
"""

from __future__ import annotations

import json
import os
import random
import shutil

import pytest

from crashharness import (
    expected_state,
    kill_after_acks,
    read_recovered,
    spawn_writer,
    verify_recovered,
)

from repro.engine.database import Database
from repro.errors import OperationalError
from repro.storage import wal as wal_mod
from repro.storage.persist import MANIFEST_NAME, WAL_NAME

CRASH_SEEDS = int(os.environ.get("REPRO_CRASH_SEEDS", "4"))
TIER1_CRASH_SEEDS = 4


def _seed_params():
    for seed in range(CRASH_SEEDS):
        marks = [pytest.mark.exhaustive] if seed >= TIER1_CRASH_SEEDS else []
        yield pytest.param(seed, marks=marks, id=f"seed{seed}")


def _wal_path(data_dir) -> str:
    return os.path.join(data_dir, WAL_NAME)


# ---------------------------------------------------------------------------
# WAL framing unit tests
# ---------------------------------------------------------------------------


class TestWalFraming:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "wal.log")
        log = wal_mod.WriteAheadLog(path, durability="fsync")
        log.append({"seq": 1, "x": "a"})
        log.append({"seq": 2, "x": "b"})
        log.close()
        records, durable, total = wal_mod.read_records(path)
        assert [r["seq"] for r in records] == [1, 2]
        assert durable == total

    def test_torn_tail_at_every_offset(self, tmp_path):
        """Truncating anywhere inside record N keeps exactly records
        1..N-1 — the byte-exact prefix property."""
        path = str(tmp_path / "wal.log")
        log = wal_mod.WriteAheadLog(path, durability="off")
        ends = []
        for seq in range(1, 4):
            ends.append(log.append({"seq": seq, "pad": "p" * seq}))
        log.close()
        with open(path, "rb") as handle:
            full = handle.read()
        for cut in range(len(full) + 1):
            torn = str(tmp_path / "torn.log")
            with open(torn, "wb") as handle:
                handle.write(full[:cut])
            records, durable, total = wal_mod.read_records(torn)
            survivors = [end for end in ends if end <= cut]
            assert [r["seq"] for r in records] == list(
                range(1, len(survivors) + 1)
            ), f"cut at byte {cut}"
            assert durable == (survivors[-1] if survivors else 0)
            assert total == cut

    def test_corrupt_payload_fails_crc(self, tmp_path):
        path = str(tmp_path / "wal.log")
        log = wal_mod.WriteAheadLog(path)
        first_end = log.append({"seq": 1})
        log.append({"seq": 2, "value": "sentinel"})
        log.close()
        with open(path, "r+b") as handle:
            handle.seek(first_end + wal_mod.FRAME_HEADER_SIZE + 2)
            byte = handle.read(1)
            handle.seek(first_end + wal_mod.FRAME_HEADER_SIZE + 2)
            handle.write(bytes([byte[0] ^ 0xFF]))
        records, durable, _ = wal_mod.read_records(path)
        assert [r["seq"] for r in records] == [1]
        assert durable == first_end

    def test_reset_empties_the_log(self, tmp_path):
        path = str(tmp_path / "wal.log")
        log = wal_mod.WriteAheadLog(path)
        log.append({"seq": 1})
        log.reset()
        log.append({"seq": 9})
        log.close()
        records, _, _ = wal_mod.read_records(path)
        assert [r["seq"] for r in records] == [9]

    def test_unknown_durability_mode_refused(self, tmp_path):
        with pytest.raises(OperationalError, match="durability"):
            wal_mod.WriteAheadLog(str(tmp_path / "w"), durability="lazy")


# ---------------------------------------------------------------------------
# Basic persistence
# ---------------------------------------------------------------------------


class TestPersistence:
    def test_round_trip_across_restart(self, tmp_path):
        d = str(tmp_path / "db")
        with Database(path=d) as db:
            conn = db.connect()
            conn.run("CREATE TABLE people (name text, age int)")
            conn.run("INSERT INTO people VALUES ('ann', 34), ('bob', 27)")
            conn.run("UPDATE people SET age = 35 WHERE name = 'ann'")
            conn.run("CREATE VIEW adults AS SELECT name FROM people WHERE age >= 30")
        with Database(path=d) as db:
            conn = db.connect()
            assert conn.run("SELECT * FROM people ORDER BY name").rows == [
                ("ann", 35),
                ("bob", 27),
            ]
            assert conn.run("SELECT * FROM adults").rows == [("ann",)]

    def test_drop_survives_restart(self, tmp_path):
        d = str(tmp_path / "db")
        with Database(path=d) as db:
            conn = db.connect()
            conn.run("CREATE TABLE a (x int)")
            conn.run("CREATE TABLE b (x int)")
            conn.run("DROP TABLE a")
        with Database(path=d) as db:
            assert not db.catalog.has_table("a")
            assert db.catalog.has_table("b")

    def test_provenance_registration_survives_restart(self, tmp_path):
        d = str(tmp_path / "db")
        with Database(path=d) as db:
            conn = db.connect()
            conn.run("CREATE TABLE src (x int)")
            conn.run("INSERT INTO src VALUES (1), (2)")
            conn.run("CREATE TABLE copy AS SELECT PROVENANCE x FROM src")
            before = db.catalog.provenance_attrs("copy")
            assert before
        with Database(path=d) as db:
            assert db.catalog.provenance_attrs("copy") == before

    def test_rolled_back_transaction_leaves_no_trace(self, tmp_path):
        d = str(tmp_path / "db")
        with Database(path=d) as db:
            conn = db.connect()
            conn.run("CREATE TABLE t (x int)")
            conn.run("BEGIN")
            conn.run("INSERT INTO t VALUES (1)")
            conn.run("ROLLBACK")
            stats = db.wal_stats()
            # Only the CREATE TABLE record: a rolled-back transaction
            # must never reach the log.
            assert stats["records_appended"] == 1
        with Database(path=d) as db:
            assert db.connect().run("SELECT * FROM t").rows == []

    def test_non_finite_floats_survive_restart(self, tmp_path):
        d = str(tmp_path / "db")
        with Database(path=d) as db:
            conn = db.connect()
            conn.run("CREATE TABLE f (x float)")
            conn.run("INSERT INTO f VALUES (1e308 * 10), (0 - 1e308 * 10), (1.5)")
        with Database(path=d) as db:
            rows = db.connect().run("SELECT x FROM f").rows
            assert rows[0][0] == float("inf")
            assert rows[1][0] == float("-inf")
            assert rows[2][0] == 1.5

    def test_checkpoint_rotates_log_and_recovers(self, tmp_path):
        d = str(tmp_path / "db")
        with Database(path=d) as db:
            conn = db.connect()
            conn.run("CREATE TABLE t (x int)")
            conn.run("INSERT INTO t VALUES (1), (2)")
            assert db.wal_stats()["wal_bytes"] > 0
            result = conn.run("CHECKPOINT")
            assert result.rows == [("CHECKPOINT",)]
            stats = db.wal_stats()
            assert stats["wal_bytes"] == 0
            assert stats["checkpoints"] == 1
            conn.run("INSERT INTO t VALUES (3)")
        with Database(path=d) as db:
            stats = db.wal_stats()
            # Only the post-checkpoint insert replays.
            assert stats["records_replayed"] == 1
            assert db.connect().run("SELECT x FROM t ORDER BY x").rows == [
                (1,),
                (2,),
                (3,),
            ]

    def test_automatic_checkpoint_on_threshold(self, tmp_path):
        d = str(tmp_path / "db")
        with Database(path=d, checkpoint_bytes=512) as db:
            conn = db.connect()
            conn.run("CREATE TABLE t (x int, pad text)")
            for i in range(12):
                conn.run(f"INSERT INTO t VALUES ({i}, '{'p' * 64}')")
            stats = db.wal_stats()
            assert stats["checkpoints"] >= 1
            assert stats["wal_bytes"] < 512 + 2048
        with Database(path=d) as db:
            assert len(db.connect().run("SELECT x FROM t").rows) == 12

    def test_checkpoint_is_noop_in_memory(self):
        db = Database()
        conn = db.connect()
        result = conn.run("CHECKPOINT")
        assert result.rows == [("CHECKPOINT (in-memory)",)]
        assert db.wal_stats() == {"enabled": False}

    def test_truncate_survives_restart(self, tmp_path):
        d = str(tmp_path / "db")
        with Database(path=d) as db:
            conn = db.connect()
            conn.run("CREATE TABLE t (x int)")
            conn.run("INSERT INTO t VALUES (1), (2)")
            conn.run("BEGIN")
            conn.run("DELETE FROM t")
            conn.run("COMMIT")
        with Database(path=d) as db:
            assert db.connect().run("SELECT * FROM t").rows == []

    def test_recovered_reads_identical_across_engines(self, tmp_path):
        d = str(tmp_path / "db")
        seed = 11
        with Database(path=d) as db:
            conn = db.connect()
            conn.run("CREATE TABLE t (id int, val int)")
            conn.run("CREATE TABLE progress (k int)")
            from crashharness import plan_txn

            for k in range(1, 9):
                ids = [r[0] for r in conn.run("SELECT id FROM t ORDER BY id").rows]
                updates, deletes, inserts = plan_txn(ids, seed, k)
                conn.run("BEGIN")
                for rid, delta in updates:
                    conn.run(f"UPDATE t SET val = val + {delta} WHERE id = {rid}")
                for rid in deletes:
                    conn.run(f"DELETE FROM t WHERE id = {rid}")
                for rid, value in inserts:
                    conn.run(f"INSERT INTO t VALUES ({rid}, {value})")
                conn.run(f"INSERT INTO progress VALUES ({k})")
                conn.run("COMMIT")
        with Database(path=d) as db:
            results = [
                db.connect(engine=engine).run("SELECT id, val FROM t ORDER BY id").rows
                for engine in ("row", "vectorized", "sqlite")
            ]
            assert results[0] == results[1] == results[2]
            assert dict(results[0]) == expected_state(seed, 8)


# ---------------------------------------------------------------------------
# Deterministic truncation matrix
# ---------------------------------------------------------------------------


class TestTruncationMatrix:
    @pytest.mark.parametrize("seed", _seed_params())
    def test_kill_at_any_byte_offset_recovers_committed_prefix(
        self, tmp_path, seed
    ):
        """Build a WAL in-process, then recover from copies truncated at
        seeded byte offsets plus every commit-boundary neighborhood; the
        survivor must equal the oracle's committed prefix exactly."""
        d = str(tmp_path / "db")
        commit_ends = []
        with Database(path=d) as db:
            conn = db.connect()
            conn.run("CREATE TABLE t (id int, val int)")
            conn.run("CREATE TABLE progress (k int)")
            from crashharness import plan_txn

            for k in range(1, 13):
                ids = [r[0] for r in conn.run("SELECT id FROM t ORDER BY id").rows]
                updates, deletes, inserts = plan_txn(ids, seed, k)
                conn.run("BEGIN")
                for rid, delta in updates:
                    conn.run(f"UPDATE t SET val = val + {delta} WHERE id = {rid}")
                for rid in deletes:
                    conn.run(f"DELETE FROM t WHERE id = {rid}")
                for rid, value in inserts:
                    conn.run(f"INSERT INTO t VALUES ({rid}, {value})")
                conn.run(f"INSERT INTO progress VALUES ({k})")
                conn.run("COMMIT")
                commit_ends.append(db.wal_stats()["wal_bytes"])
        total = os.path.getsize(_wal_path(d))
        assert commit_ends[-1] == total

        rng = random.Random(seed)
        offsets = {0, 1, total - 1, total}
        for end in commit_ends:
            # Just-durable, torn header, and torn marker positions.
            offsets.update({end, end - 1, min(end + 3, total)})
        offsets.update(rng.randrange(total + 1) for _ in range(12))
        for cut in sorted(offsets):
            crash_dir = str(tmp_path / f"crash{cut}")
            shutil.copytree(d, crash_dir)
            with open(_wal_path(crash_dir), "r+b") as handle:
                handle.truncate(cut)
            survivors = sum(1 for end in commit_ends if end <= cut)
            count = verify_recovered(crash_dir, seed, context=f"cut at {cut}")
            assert count == survivors, f"cut at byte {cut}"
            shutil.rmtree(crash_dir)

    def test_bit_flip_in_tail_record_loses_only_that_commit(self, tmp_path):
        seed = 3
        d = str(tmp_path / "db")
        commit_ends = []
        with Database(path=d) as db:
            conn = db.connect()
            conn.run("CREATE TABLE t (id int, val int)")
            conn.run("CREATE TABLE progress (k int)")
            from crashharness import plan_txn

            for k in range(1, 5):
                ids = [r[0] for r in conn.run("SELECT id FROM t ORDER BY id").rows]
                _, _, inserts = plan_txn(ids, seed, k)
                conn.run("BEGIN")
                for rid, value in inserts:
                    conn.run(f"INSERT INTO t VALUES ({rid}, {value})")
                conn.run(f"INSERT INTO progress VALUES ({k})")
                conn.run("COMMIT")
                commit_ends.append(db.wal_stats()["wal_bytes"])
        # Flip one payload byte inside the final record.
        with open(_wal_path(d), "r+b") as handle:
            target = commit_ends[-2] + wal_mod.FRAME_HEADER_SIZE + 4
            handle.seek(target)
            byte = handle.read(1)
            handle.seek(target)
            handle.write(bytes([byte[0] ^ 0x40]))
        count, state, db = read_recovered(d)
        db.close()
        assert count == 3
        # The oracle only models inserts here, so rebuild expectations.
        expect: dict[int, int] = {}
        from crashharness import plan_txn

        for k in range(1, 4):
            _, _, inserts = plan_txn(sorted(expect), seed, k)
            expect.update(dict(inserts))
        assert state == expect


# ---------------------------------------------------------------------------
# Subprocess kill matrix
# ---------------------------------------------------------------------------


TXNS_PER_WRITER = 40


class TestKillMatrix:
    @pytest.mark.parametrize("durability", ["fsync", "os"])
    @pytest.mark.parametrize("seed", _seed_params())
    def test_sigkill_mid_commit_recovers_acked_prefix(
        self, tmp_path, seed, durability
    ):
        """SIGKILL a live writer at a seeded point mid-stream; recovery
        must produce the oracle's committed prefix and (fsync/os modes
        survive a process kill) include every acknowledged commit."""
        d = str(tmp_path / "db")
        rng = random.Random(seed * 7919 + (0 if durability == "fsync" else 1))
        proc = spawn_writer(d, seed, 1, TXNS_PER_WRITER, durability)
        acked, finished = kill_after_acks(
            proc,
            acks=rng.randint(1, TXNS_PER_WRITER // 2),
            delay=rng.choice([0.0, 0.0, 0.001, 0.003]),
        )
        count = verify_recovered(
            d, seed, context=f"SIGKILL after {len(acked)} acks ({durability})"
        )
        if not finished:
            # The kill landed mid-stream: an acknowledged commit was
            # durable before the ack was printed.
            assert count >= len(acked)
            assert count <= TXNS_PER_WRITER

    def test_kill_during_initial_ddl(self, tmp_path):
        """A kill before the first commit must recover to an empty (or
        table-less) database, never a half-created catalog crash."""
        d = str(tmp_path / "db")
        proc = spawn_writer(d, 0, 1, TXNS_PER_WRITER, "fsync")
        proc.kill()
        proc.wait(timeout=30)
        if proc.stdout is not None:
            proc.stdout.close()
        if proc.stderr is not None:
            proc.stderr.close()
        count = verify_recovered(d, 0, context="SIGKILL at startup")
        assert count >= 0


# ---------------------------------------------------------------------------
# Replay idempotence: recover -> write -> crash -> recover, in a loop
# ---------------------------------------------------------------------------


class TestReplayIdempotence:
    @pytest.mark.parametrize("seed", _seed_params())
    def test_crash_loop_never_double_applies(self, tmp_path, seed):
        """Across repeated crash/recover cycles every committed
        transaction applies exactly once (``progress`` stays a
        duplicate-free contiguous prefix, checked by the oracle) and
        version stamps stay monotone across restarts."""
        d = str(tmp_path / "db")
        rng = random.Random(seed + 424243)
        committed = 0
        last_stamp = 0
        for round_no in range(4):
            proc = spawn_writer(
                d, seed, committed + 1, TXNS_PER_WRITER, "fsync"
            )
            acked, finished = kill_after_acks(
                proc,
                acks=rng.randint(1, 10),
                delay=rng.choice([0.0, 0.001]),
            )
            if acked:
                # Monotone across the restart: the new process's stamps
                # must exceed everything the previous one committed.
                assert acked[0][1] > last_stamp, (
                    f"round {round_no}: stamp regressed across recovery"
                )
                last_stamp = max(stamp for _, stamp in acked)
            committed = verify_recovered(
                d, seed, context=f"crash loop round {round_no}"
            )
            assert committed >= len(acked) + (0 if round_no == 0 else 0)
            if finished:
                break

    def test_recovery_is_idempotent_without_writes(self, tmp_path):
        """Recovering the same directory repeatedly (no new writes) is a
        fixed point: same state, no new WAL records, same replay count."""
        d = str(tmp_path / "db")
        with Database(path=d) as db:
            conn = db.connect()
            conn.run("CREATE TABLE t (x int)")
            conn.run("INSERT INTO t VALUES (1), (2), (3)")
        with open(_wal_path(d), "rb") as handle:
            wal_before = handle.read()
        for _ in range(3):
            with Database(path=d) as db:
                assert db.connect().run("SELECT x FROM t ORDER BY x").rows == [
                    (1,),
                    (2,),
                    (3,),
                ]
                assert db.wal_stats()["records_replayed"] == 2
            with open(_wal_path(d), "rb") as handle:
                assert handle.read() == wal_before

    def test_manifest_is_atomic_under_checkpoint_crash(self, tmp_path):
        """A leftover MANIFEST.json.tmp (simulating a crash mid-
        checkpoint) must not confuse recovery: the previous manifest or
        none at all governs."""
        d = str(tmp_path / "db")
        with Database(path=d) as db:
            conn = db.connect()
            conn.run("CREATE TABLE t (x int)")
            conn.run("INSERT INTO t VALUES (7)")
        with open(os.path.join(d, MANIFEST_NAME + ".tmp"), "w") as handle:
            json.dump({"format": 99, "garbage": True}, handle)
        with Database(path=d) as db:
            assert db.connect().run("SELECT x FROM t").rows == [(7,)]
