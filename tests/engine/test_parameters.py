"""Parameter binding across query classes: placeholders in WHERE /
SELECT / HAVING / LIMIT, provenance queries, subqueries, DML,
executemany, named parameters, and bind-time type checking."""

from __future__ import annotations

import pytest

from repro import (
    CatalogError,
    ExecutionError,
    ParseError,
    ProgrammingError,
    TypeCheckError,
    connect,
)


@pytest.fixture
def conn():
    connection = connect()
    connection.execute(
        "CREATE TABLE r (a int, b text); "
        "INSERT INTO r VALUES (1, 'x'), (2, 'y'), (3, 'z'); "
        "CREATE TABLE s (a int, n int); "
        "INSERT INTO s VALUES (1, 10), (2, 20), (3, 30)"
    )
    return connection


class TestPlaceholderPositions:
    def test_where(self, conn):
        assert conn.execute(
            "SELECT a FROM r WHERE a > ? ORDER BY a", (1,)
        ).fetchall() == [(2,), (3,)]

    def test_select_list(self, conn):
        assert conn.execute(
            "SELECT a + ? FROM r WHERE a = 1", (10,)
        ).fetchall() == [(11,)]

    def test_bare_select_item(self, conn):
        assert conn.execute("SELECT ?, a FROM r WHERE a = 1", ("tag",)).fetchall() == [
            ("tag", 1)
        ]

    def test_having(self, conn):
        rows = conn.execute(
            "SELECT b, count(*) FROM r GROUP BY b HAVING count(*) >= ?", (1,)
        ).fetchall()
        assert sorted(rows) == [("x", 1), ("y", 1), ("z", 1)]
        assert (
            conn.execute(
                "SELECT b, count(*) FROM r GROUP BY b HAVING count(*) > ?", (1,)
            ).fetchall()
            == []
        )

    def test_limit_offset(self, conn):
        assert conn.execute(
            "SELECT a FROM r ORDER BY a LIMIT ? OFFSET ?", (1, 1)
        ).fetchall() == [(2,)]

    def test_in_list(self, conn):
        assert conn.execute(
            "SELECT a FROM r WHERE a IN (?, ?) ORDER BY a", (1, 3)
        ).fetchall() == [(1,), (3,)]

    def test_join_condition(self, conn):
        rows = conn.execute(
            "SELECT r.a, s.n FROM r JOIN s ON r.a = s.a AND s.n > ?", (15,)
        ).fetchall()
        assert sorted(rows) == [(2, 20), (3, 30)]

    def test_subquery_parameter_rebinds_per_execution(self, conn):
        """Regression: an uncorrelated subquery mentioning a parameter
        must not reuse its cached result across executions."""
        statement = conn.prepare(
            "SELECT a FROM r WHERE a = (SELECT s.a FROM s WHERE s.n = ?)"
        )
        assert statement.execute((10,)).rows == [(1,)]
        assert statement.execute((30,)).rows == [(3,)]

    def test_uncorrelated_subquery_sees_dml_between_executions(self, conn):
        statement = conn.prepare(
            "SELECT a FROM r WHERE a = (SELECT max(s.a) FROM s)"
        )
        assert statement.execute().rows == [(3,)]
        conn.execute("DELETE FROM s WHERE a = 3")
        assert statement.execute().rows == [(2,)]


class TestProvenanceQueries:
    def test_provenance_with_parameter(self, conn):
        cursor = conn.execute("SELECT PROVENANCE a FROM r WHERE a > ?", (2,))
        assert cursor.fetchall() == [(3, 3, "z")]
        assert cursor.provenance_attrs == ("prov_r_a", "prov_r_b")

    def test_provenance_union_with_parameter(self, conn):
        rows = conn.execute(
            "SELECT PROVENANCE a FROM r WHERE a > :lo "
            "UNION SELECT a FROM s WHERE a > :lo",
            {"lo": 2},
        ).fetchall()
        # a=3 qualifies in both branches; provenance keeps one row per
        # contributing source tuple (Figure 2 semantics).
        assert len(rows) == 2
        assert all(row[0] == 3 for row in rows)

    def test_provenance_aggregation_with_parameter(self, conn):
        rows = conn.execute(
            "SELECT PROVENANCE count(*), b FROM r WHERE a <= ? GROUP BY b", (1,)
        ).fetchall()
        assert [row[:2] for row in rows] == [(1, "x")]


class TestNamedParameters:
    def test_mapping_binding(self, conn):
        assert conn.execute(
            "SELECT a FROM r WHERE a > :lo AND a < :hi", {"lo": 0, "hi": 3}
        ).rowcount == 2

    def test_repeated_name_is_one_slot(self, conn):
        statement = conn.prepare("SELECT a FROM r WHERE a > :x AND a < :x + 2")
        assert statement.parameter_count == 1
        assert statement.execute({"x": 1}).rows == [(2,)]

    def test_missing_and_unknown_names(self, conn):
        with pytest.raises(ProgrammingError, match="missing value.*hi"):
            conn.execute("SELECT a FROM r WHERE a > :lo AND a < :hi", {"lo": 0})
        with pytest.raises(ProgrammingError, match="unknown parameter.*typo"):
            conn.execute("SELECT a FROM r WHERE a > :lo", {"lo": 0, "typo": 1})

    def test_named_requires_mapping(self, conn):
        with pytest.raises(ProgrammingError, match="mapping"):
            conn.execute("SELECT a FROM r WHERE a > :lo", (0,))

    def test_positional_rejects_mapping(self, conn):
        with pytest.raises(ProgrammingError, match="sequence"):
            conn.execute("SELECT a FROM r WHERE a > ?", {"lo": 0})

    def test_mixing_styles_is_a_parse_error(self, conn):
        with pytest.raises(ParseError, match="cannot mix"):
            conn.execute("SELECT a FROM r WHERE a > ? AND a < :hi", (0,))


class TestBindingErrors:
    def test_wrong_count(self, conn):
        with pytest.raises(ProgrammingError, match="expects 2 parameter"):
            conn.execute("SELECT a FROM r WHERE a > ? AND a < ?", (1,))
        with pytest.raises(ProgrammingError, match="expects 1 parameter"):
            conn.execute("SELECT a FROM r WHERE a > ?", (1, 2))

    def test_params_without_placeholders(self, conn):
        with pytest.raises(ProgrammingError, match="takes no parameters"):
            conn.execute("SELECT a FROM r", (1,))

    def test_placeholders_without_params(self, conn):
        with pytest.raises(ProgrammingError, match="none given"):
            conn.execute("SELECT a FROM r WHERE a > ?")

    def test_parameters_on_multi_statement_script(self, conn):
        with pytest.raises(ProgrammingError, match="single statement"):
            conn.execute("SELECT 1; SELECT a FROM r WHERE a > ?", (1,))

    def test_views_reject_placeholders(self, conn):
        with pytest.raises(ProgrammingError, match="views cannot"):
            conn.execute("CREATE VIEW v AS SELECT a FROM r WHERE a > ?", (1,))


class TestTypeChecking:
    def test_int_slot_rejects_text(self, conn):
        with pytest.raises(TypeCheckError, match=r"\$1 expects int, got text"):
            conn.execute("SELECT a FROM r WHERE a > ?", ("high",))

    def test_text_slot_rejects_int(self, conn):
        with pytest.raises(TypeCheckError, match=r"\$1 expects text, got int"):
            conn.execute("SELECT a FROM r WHERE b = ?", (7,))

    def test_named_slot_error_uses_name(self, conn):
        with pytest.raises(TypeCheckError, match=":lo expects int"):
            conn.execute("SELECT a FROM r WHERE a > :lo", {"lo": "nope"})

    def test_int_slot_accepts_float(self, conn):
        # Comparisons mix int and float freely, so binding 1.5 where a
        # literal 1.5 would be legal must work too.
        assert conn.execute(
            "SELECT a FROM r WHERE a > ? ORDER BY a", (1.5,)
        ).fetchall() == [(2,), (3,)]

    def test_float_slot_accepts_int(self, conn):
        conn.execute("CREATE TABLE f (x float); INSERT INTO f VALUES (1.5)")
        assert conn.execute("SELECT x FROM f WHERE x > ?", (1,)).rowcount == 1

    def test_null_always_allowed(self, conn):
        assert conn.execute("SELECT a FROM r WHERE a > ?", (None,)).fetchall() == []

    def test_in_subquery_slot_typed_from_subquery_column(self, conn):
        with pytest.raises(TypeCheckError, match="expects int"):
            conn.execute("SELECT a FROM r WHERE ? IN (SELECT a FROM s)", ("x",))


class TestDMLParameters:
    def test_parameterized_insert(self, conn):
        cursor = conn.execute("INSERT INTO r VALUES (?, ?)", (4, "w"))
        assert cursor.rowcount == 1
        assert conn.execute("SELECT b FROM r WHERE a = 4").fetchall() == [("w",)]

    def test_executemany_bulk_insert(self, conn):
        cursor = conn.executemany(
            "INSERT INTO r VALUES (?, ?)",
            [(10, "p"), (11, "q"), (12, "r")],
        )
        assert cursor.rowcount == 3
        assert conn.execute("SELECT count(*) FROM r WHERE a >= 10").fetchone() == (3,)

    def test_executemany_parses_once(self, conn):
        before = conn.counters.snapshot()
        conn.executemany("INSERT INTO r VALUES (?, ?)", [(20, "a"), (21, "b")])
        assert conn.counters.parse - before.parse == 1

    def test_executemany_requires_single_statement(self, conn):
        with pytest.raises(ProgrammingError, match="single statement"):
            conn.executemany("SELECT 1; SELECT 2", [()])

    def test_executemany_empty_sequence_is_a_zero_row_batch(self, conn):
        """Regression: an empty parameter list used to leave the cursor
        reporting rowcount -1; PEP 249 says the batch simply affected
        zero rows."""
        cursor = conn.executemany("INSERT INTO r VALUES (?, ?)", [])
        assert cursor.rowcount == 0
        assert conn.execute("SELECT count(*) FROM r").fetchone() == (3,)

    def test_executemany_empty_sequence_still_validates_sql(self, conn):
        # The statement is analyzed even though nothing runs: typos must
        # not be silently swallowed just because the batch was empty.
        with pytest.raises(CatalogError):
            conn.executemany("INSERT INTO ghost VALUES (?)", [])
        with pytest.raises(ProgrammingError, match="single statement"):
            conn.executemany("SELECT 1; SELECT 2", [])

    def test_executemany_empty_update_and_delete(self, conn):
        assert conn.executemany("UPDATE r SET b = ? WHERE a = ?", []).rowcount == 0
        assert conn.executemany("DELETE FROM r WHERE a = ?", []).rowcount == 0
        assert conn.execute("SELECT count(*) FROM r").fetchone() == (3,)

    def test_parameterized_update_and_delete(self, conn):
        assert conn.execute(
            "UPDATE r SET b = ? WHERE a = ?", ("updated", 2)
        ).rowcount == 1
        assert conn.execute("SELECT b FROM r WHERE a = 2").fetchone() == ("updated",)
        assert conn.execute("DELETE FROM r WHERE a > ?", (1,)).rowcount == 2

    def test_named_dml(self, conn):
        conn.execute(
            "INSERT INTO r VALUES (:a, :b)", {"a": 5, "b": "named"}
        )
        assert conn.execute("SELECT b FROM r WHERE a = 5").fetchone() == ("named",)

    def test_runtime_error_still_surfaces(self, conn):
        with pytest.raises(ExecutionError):
            conn.execute("SELECT a / ? FROM r", (0,)).fetchall()
