"""CLI shell tests: statements, backslash commands, error handling."""

from __future__ import annotations

import io

import pytest

from repro.cli import Shell


@pytest.fixture
def shell():
    return Shell(out=io.StringIO())


def output(shell):
    return shell.out.getvalue()


class TestStatements:
    def test_basic_roundtrip(self, shell):
        shell.run(
            [
                "CREATE TABLE t (a int);",
                "INSERT INTO t VALUES (1), (2);",
                "SELECT a FROM t ORDER BY a;",
            ]
        )
        assert "(2 rows)" in output(shell)

    def test_multiline_statement(self, shell):
        shell.run(["SELECT", "1 AS x", ";"])
        assert "x" in output(shell) and "(1 row)" in output(shell)

    def test_statement_without_trailing_semicolon_runs_at_eof(self, shell):
        shell.run(["SELECT 42 AS answer"])
        assert "42" in output(shell)

    def test_error_is_reported_not_raised(self, shell):
        shell.run(["SELECT zzz FROM missing;"])
        assert "ERROR:" in output(shell)

    def test_provenance_query(self, shell):
        shell.run(["\\demo", "SELECT PROVENANCE mId, text FROM messages;"])
        assert "prov_messages_mid" in output(shell)


class TestCommands:
    def test_demo_and_describe(self, shell):
        shell.run(["\\demo", "\\d"])
        text = output(shell)
        assert "messages" in text and "v1  (view)" in text

    def test_describe_relation_with_provenance_marker(self, shell):
        shell.run(
            [
                "CREATE TABLE r (a int);",
                "INSERT INTO r VALUES (1);",
                "CREATE TABLE p AS SELECT PROVENANCE a FROM r;",
                "\\d p",
            ]
        )
        assert "[provenance]" in output(shell)

    def test_describe_empty_catalog(self, shell):
        shell.run(["\\d"])
        assert "(no relations)" in output(shell)

    def test_rewrite_and_algebra(self, shell):
        shell.run(
            [
                "\\demo",
                "\\rewrite SELECT PROVENANCE text FROM messages",
                "\\algebra SELECT PROVENANCE text FROM messages",
            ]
        )
        text = output(shell)
        assert "prov_messages_text" in text
        assert "original query" in text and "rewritten query" in text

    def test_browser_command(self, shell):
        shell.run(["\\demo", "\\browser SELECT PROVENANCE text FROM messages"])
        assert "rewritten SQL (2)" in output(shell)

    def test_timing_toggle(self, shell):
        shell.run(["\\demo", "\\timing", "SELECT text FROM messages;"])
        text = output(shell)
        assert "timing is on" in text and "execute" in text

    def test_quit_stops_processing(self, shell):
        shell.run(["\\q", "SELECT 1;"])
        assert "(1 row)" not in output(shell)

    def test_unknown_command(self, shell):
        shell.run(["\\nope"])
        assert "unknown command" in output(shell)

    def test_help(self, shell):
        shell.run(["\\h"])
        assert "\\browser" in output(shell)

    def test_command_error_reported(self, shell):
        shell.run(["\\d missing"])
        assert "ERROR:" in output(shell)


class TestMainEntryPoint:
    def test_script_file_execution(self, tmp_path, capsys):
        from repro.cli import main

        script = tmp_path / "script.sql"
        script.write_text("CREATE TABLE t (a int); INSERT INTO t VALUES (7); SELECT a FROM t;")
        assert main([str(script)]) == 0
        assert "7" in capsys.readouterr().out
