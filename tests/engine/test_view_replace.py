"""Stale-view-definition regressions: redefinitions reach every reader.

A view replaced (or dropped and re-created) while a prepared statement
built against the old definition is still open must never serve the old
plan: every DDL bumps the catalog version, prepared statements
re-prepare on the mismatch, and the plan cache keys on the version so
dropped-definition plans simply stop matching. Parametrized over every
registered engine — the re-prepare path runs per backend.
"""

from __future__ import annotations

import pytest

import repro
from repro.backend import engine_names
from repro.errors import AnalyzeError


@pytest.fixture(params=engine_names())
def db(request):
    connection = repro.connect(engine=request.param)
    connection.run("CREATE TABLE t (a int, b text)")
    connection.run(
        "INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'x'), (4, 'z')"
    )
    connection.run("CREATE VIEW v AS SELECT a, b FROM t WHERE a <= 2")
    yield connection
    connection.close()


def test_replace_view_reaches_open_prepared_statement(db):
    statement = db.prepare("SELECT a, b FROM v")
    assert statement.execute().rows == [(1, "x"), (2, "y")]
    db.run("CREATE OR REPLACE VIEW v AS SELECT a, b FROM t WHERE a > 2")
    assert statement.execute().rows == [(3, "x"), (4, "z")]


def test_drop_and_recreate_view_reaches_open_prepared_statement(db):
    statement = db.prepare("SELECT a FROM v")
    assert statement.execute().rows == [(1,), (2,)]
    db.run("DROP VIEW v")
    db.run("CREATE VIEW v AS SELECT a FROM t WHERE b = 'x'")
    assert statement.execute().rows == [(1,), (3,)]


def test_dropped_view_fails_instead_of_serving_old_plan(db):
    statement = db.prepare("SELECT a FROM v")
    assert statement.execute().rows == [(1,), (2,)]
    db.run("DROP VIEW v")
    with pytest.raises(AnalyzeError, match="does not exist"):
        statement.execute()


def test_plan_cache_does_not_serve_replaced_definition(db):
    sql = "SELECT count(*) FROM v"
    assert db.run(sql).rows == [(2,)]
    db.run("CREATE OR REPLACE VIEW v AS SELECT a, b FROM t")
    assert db.run(sql).rows == [(4,)]
    db.run("DROP VIEW v")
    with pytest.raises(AnalyzeError, match="does not exist"):
        db.run(sql)


def test_replace_view_changing_schema_reaches_prepared_statement(db):
    statement = db.prepare("SELECT * FROM v")
    first = statement.execute()
    assert first.columns == ["a", "b"]
    db.run("CREATE OR REPLACE VIEW v AS SELECT b, a * 10 AS a10 FROM t WHERE a = 1")
    second = statement.execute()
    assert second.columns == ["b", "a10"]
    assert second.rows == [("x", 10)]


def test_replace_underlying_view_stales_matview_reader(db):
    """A matview built over a view must not keep serving rows computed
    from the view's old definition after CREATE OR REPLACE VIEW."""
    db.run("CREATE MATERIALIZED VIEW mv AS SELECT a FROM v")
    assert db.run("SELECT * FROM mv").rows == [(1,), (2,)]
    db.run("CREATE OR REPLACE VIEW v AS SELECT a, b FROM t WHERE a >= 3")
    assert db.run("SELECT * FROM mv").rows == [(3,), (4,)]


def test_prepared_provenance_query_follows_view_replacement(db):
    statement = db.prepare("SELECT PROVENANCE a FROM v")
    first = statement.execute()
    assert [row[0] for row in first.rows] == [1, 2]
    db.run("CREATE OR REPLACE VIEW v AS SELECT a, b FROM t WHERE b = 'z'")
    second = statement.execute()
    assert [row[0] for row in second.rows] == [4]
