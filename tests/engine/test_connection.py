"""DB-API 2.0 front end: connections, cursors, prepared statements,
the plan cache, and the deprecated PermDB shim."""

from __future__ import annotations

import warnings

import pytest

import repro
from repro import (
    Connection,
    ParseError,
    PermDB,
    PermError,
    ProgrammingError,
    connect,
)
from repro.datatypes import SQLType


@pytest.fixture
def conn():
    connection = connect()
    connection.execute(
        "CREATE TABLE t (a int, b text); "
        "INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')"
    )
    return connection


class TestModuleGlobals:
    def test_pep249_globals(self):
        assert repro.apilevel == "2.0"
        assert repro.threadsafety == 1
        assert repro.paramstyle == "qmark"
        assert issubclass(repro.ProgrammingError, repro.Error)
        assert issubclass(repro.DataError, repro.DatabaseError)

    def test_connect_returns_connection(self):
        assert isinstance(connect(), Connection)


class TestCursor:
    def test_execute_returns_cursor(self, conn):
        cursor = conn.execute("SELECT a FROM t ORDER BY a")
        assert cursor.fetchone() == (1,)
        assert cursor.fetchone() == (2,)
        assert cursor.fetchall() == [(3,)]
        assert cursor.fetchone() is None

    def test_iteration(self, conn):
        assert list(conn.execute("SELECT a FROM t ORDER BY a")) == [(1,), (2,), (3,)]

    def test_fetchmany_and_arraysize(self, conn):
        cursor = conn.execute("SELECT a FROM t ORDER BY a")
        assert cursor.fetchmany(2) == [(1,), (2,)]
        assert cursor.fetchmany(2) == [(3,)]
        assert cursor.fetchmany(2) == []
        cursor.execute("SELECT a FROM t ORDER BY a")
        cursor.arraysize = 2
        assert cursor.fetchmany() == [(1,), (2,)]

    def test_description(self, conn):
        cursor = conn.execute("SELECT a, b FROM t")
        names = [entry[0] for entry in cursor.description]
        types = [entry[1] for entry in cursor.description]
        assert names == ["a", "b"]
        assert types == [SQLType.INT, SQLType.TEXT]
        assert all(len(entry) == 7 for entry in cursor.description)

    def test_description_none_before_execute(self, conn):
        assert conn.cursor().description is None

    def test_rowcount(self, conn):
        assert conn.execute("SELECT a FROM t").rowcount == 3
        assert conn.execute("INSERT INTO t VALUES (4, 'w')").rowcount == 1
        assert conn.execute("DELETE FROM t WHERE a > 2").rowcount == 2
        assert conn.execute("UPDATE t SET b = 'u'").rowcount == 2

    def test_cursor_reuse(self, conn):
        cursor = conn.cursor()
        assert cursor.execute("SELECT a FROM t WHERE a = 1").fetchall() == [(1,)]
        assert cursor.execute("SELECT a FROM t WHERE a = 2").fetchall() == [(2,)]

    def test_fetch_before_execute_raises(self, conn):
        cursor = conn.cursor()
        with pytest.raises(ProgrammingError, match="no result set"):
            cursor.fetchone()
        with pytest.raises(ProgrammingError, match="no result set"):
            cursor.fetchall()
        with pytest.raises(ProgrammingError, match="no result set"):
            cursor.fetchmany(1)

    def test_closed_cursor_rejects_operations(self, conn):
        cursor = conn.execute("SELECT a FROM t")
        cursor.close()
        with pytest.raises(ProgrammingError, match="cursor is closed"):
            cursor.fetchall()
        with pytest.raises(ProgrammingError, match="cursor is closed"):
            cursor.execute("SELECT 1")

    def test_cursor_context_manager(self, conn):
        with conn.cursor() as cursor:
            cursor.execute("SELECT a FROM t")
        assert cursor.closed

    def test_provenance_attrs_and_relation(self, conn):
        cursor = conn.execute("SELECT PROVENANCE a FROM t WHERE a > 2")
        assert cursor.provenance_attrs == ("prov_t_a", "prov_t_b")
        assert cursor.relation.original_attrs == ["a"]


class TestConnectionLifecycle:
    def test_context_manager_closes(self):
        with connect() as connection:
            connection.execute("CREATE TABLE t (a int)")
        assert connection.closed
        with pytest.raises(ProgrammingError, match="connection is closed"):
            connection.execute("SELECT 1")
        with pytest.raises(ProgrammingError, match="connection is closed"):
            connection.cursor()

    def test_commit_rollback_without_transaction_are_noops(self, conn):
        # Real transactions live in tests/transactions/; outside one,
        # commit()/rollback() remain safe no-ops for DB-API tooling.
        assert not conn.in_transaction
        conn.commit()
        conn.rollback()
        assert conn.autocommit

    def test_closed_connection_blocks_existing_cursor(self, conn):
        cursor = conn.execute("SELECT a FROM t")
        conn.close()
        with pytest.raises(ProgrammingError, match="connection is closed"):
            cursor.execute("SELECT a FROM t")

    def test_closed_connection_blocks_prepared(self, conn):
        statement = conn.prepare("SELECT a FROM t")
        conn.close()
        with pytest.raises(ProgrammingError, match="connection is closed"):
            statement.execute()

    def test_close_is_idempotent(self, conn):
        conn.close()
        conn.close()  # second close must be a silent no-op
        assert conn.closed

    def test_cursor_close_is_idempotent(self, conn):
        cursor = conn.execute("SELECT a FROM t")
        cursor.close()
        cursor.close()
        assert cursor.closed

    def test_closed_connection_blocks_every_entry_point(self, conn):
        relation = conn.run("SELECT a FROM t")
        conn.close()
        with pytest.raises(ProgrammingError, match="connection is closed"):
            conn.run("SELECT 1")
        with pytest.raises(ProgrammingError, match="connection is closed"):
            conn.load_rows("t", [(4, "w")])
        with pytest.raises(ProgrammingError, match="connection is closed"):
            conn.create_table_from_relation("copy", relation)
        with pytest.raises(ProgrammingError, match="connection is closed"):
            conn.analyze_relation_schema("t")

    def test_close_rolls_back_open_transaction(self):
        database = repro.Database()
        writer = connect(database=database)
        writer.execute("CREATE TABLE t (a int)")
        writer.execute("INSERT INTO t VALUES (1)")
        writer.begin()
        writer.execute("UPDATE t SET a = 99")
        writer.close()
        observer = connect(database=database)
        assert observer.execute("SELECT a FROM t").fetchall() == [(1,)]


class TestPreparedStatements:
    def test_prepare_pays_pipeline_once(self, conn):
        """Acceptance: 100 executions of a prepared provenance query
        re-run only the execute stage."""
        statement = conn.prepare("SELECT PROVENANCE a FROM t WHERE a > ?")
        before = conn.counters.snapshot()
        for i in range(100):
            result = statement.execute((i % 3,))
        after = conn.counters
        assert after.executed_since(before) == 100
        assert after.prepared_since(before) == 0  # no analyze re-runs
        assert after.parse == before.parse
        assert after.optimize == before.optimize
        assert after.plan == before.plan
        assert result.columns == ["a", "prov_t_a", "prov_t_b"]

    def test_prepared_results_follow_parameters(self, conn):
        statement = conn.prepare("SELECT a FROM t WHERE a > ? ORDER BY a")
        assert statement.execute((0,)).rows == [(1,), (2,), (3,)]
        assert statement.execute((2,)).rows == [(3,)]
        assert statement.execute((99,)).rows == []

    def test_prepared_sees_new_rows(self, conn):
        statement = conn.prepare("SELECT count(*) FROM t")
        assert statement.execute().rows == [(3,)]
        conn.execute("INSERT INTO t VALUES (4, 'w')")
        assert statement.execute().rows == [(4,)]

    def test_prepared_metadata(self, conn):
        statement = conn.prepare("SELECT a, b FROM t WHERE a > :lo AND a < :hi")
        assert statement.parameter_count == 2
        assert statement.parameter_names == ("lo", "hi")
        assert statement.columns == ["a", "b"]
        assert statement.execute({"lo": 0, "hi": 2}).rows == [(1, "x")]

    def test_prepared_executemany(self, conn):
        statement = conn.prepare("SELECT a FROM t WHERE a = ?")
        result = statement.executemany([(1,), (2,)])
        assert result.rows == [(2,)]

    def test_prepared_revalidates_after_ddl(self, conn):
        """A held prepared statement must not scan dropped storage."""
        statement = conn.prepare("SELECT a FROM t ORDER BY a")
        assert statement.execute().rows == [(1,), (2,), (3,)]
        conn.execute("DROP TABLE t")
        conn.execute("CREATE TABLE t (a int, b text); INSERT INTO t VALUES (99, 'new')")
        assert statement.execute().rows == [(99,)]

    def test_prepared_errors_when_relation_dropped(self, conn):
        from repro import AnalyzeError

        statement = conn.prepare("SELECT a FROM t")
        conn.execute("DROP TABLE t")
        with pytest.raises(AnalyzeError, match="does not exist"):
            statement.execute()

    def test_prepare_rejects_ddl_and_multi(self, conn):
        with pytest.raises(ProgrammingError, match="queries only"):
            conn.prepare("CREATE TABLE u (a int)")
        with pytest.raises(ProgrammingError, match="exactly one statement"):
            conn.prepare("SELECT 1; SELECT 2")


class TestPlanCache:
    def test_repeated_execute_hits_cache(self, conn):
        """Acceptance: repeated cursor.execute of the same SQL text shows
        plan-cache hits and skips the pipeline."""
        conn.execute("SELECT a FROM t WHERE a > ?", (0,))
        hits0 = conn.plan_cache.hits
        before = conn.counters.snapshot()
        for i in range(10):
            conn.execute("SELECT a FROM t WHERE a > ?", (i,))
        assert conn.plan_cache.hits == hits0 + 10
        assert conn.counters.prepared_since(before) == 0
        assert conn.counters.executed_since(before) == 10

    def test_whitespace_variants_share_a_plan(self, conn):
        conn.execute("SELECT a FROM t WHERE a > 1")
        hits0 = conn.plan_cache.hits
        conn.execute("select a from t where a > 1")
        conn.execute("SELECT  a\nFROM t   WHERE a > 1")
        assert conn.plan_cache.hits == hits0 + 2

    def test_ddl_invalidates_cached_plans(self, conn):
        assert conn.execute("SELECT count(*) FROM t").fetchone() == (3,)
        conn.execute("DROP TABLE t")
        conn.execute("CREATE TABLE t (a int, b text); INSERT INTO t VALUES (9, 'q')")
        # Same SQL text, new catalog version: must not reuse the old scan.
        assert conn.execute("SELECT count(*) FROM t").fetchone() == (1,)

    def test_strategy_toggle_invalidates_cached_plans(self, conn):
        sql = "SELECT PROVENANCE a FROM t"
        first = conn.execute(sql).relation
        misses0 = conn.plan_cache.misses
        conn.options.union_strategy = "joinback"
        conn.execute(sql)
        assert conn.plan_cache.misses == misses0 + 1
        assert first is not None

    def test_lru_eviction(self):
        connection = connect(plan_cache_size=2)
        connection.execute("CREATE TABLE t (a int)")
        connection.execute("SELECT 1 FROM t")
        connection.execute("SELECT 2 FROM t")
        connection.execute("SELECT 3 FROM t")
        assert len(connection.plan_cache) == 2

    def test_stats_shape(self, conn):
        stats = conn.plan_cache.stats()
        assert set(stats) == {"hits", "misses", "size", "capacity"}


class TestBugfixes:
    """The two satellite bugfixes: empty input and EXPLAIN modes."""

    def test_empty_statement_raises_parse_error(self, conn):
        for sql in ("", "   ", ";;", "-- only a comment", "/* block */"):
            with pytest.raises(ParseError, match="contains no SQL"):
                conn.execute(sql)

    def test_empty_statement_consistent_on_shim(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            db = PermDB()
        with pytest.raises(ParseError, match="contains no SQL"):
            db.execute("  -- nothing")

    def test_explain_mode_case_insensitive(self, conn):
        assert conn.explain("SELECT a FROM t", mode="PLAN") == conn.explain(
            "SELECT a FROM t", mode="plan"
        )
        assert "prov_t_a" in conn.explain("SELECT PROVENANCE a FROM t", mode="Rewrite")

    def test_explain_unknown_mode_lists_valid_modes(self, conn):
        with pytest.raises(PermError, match="rewrite, algebra, plan"):
            conn.explain("SELECT a FROM t", mode="bogus")

    def test_sql_level_explain_unknown_mode(self, conn):
        with pytest.raises(ParseError, match="REWRITE, ALGEBRA, PLAN"):
            conn.execute("EXPLAIN NONSENSE SELECT a FROM t")

    def test_sql_level_explain_still_defaults_to_plan(self, conn):
        result = conn.execute("EXPLAIN SELECT a FROM t").relation
        assert any("Scan(t)" in row[0] for row in result.rows)

    def test_sql_level_explain_of_parameterized_query(self, conn):
        """EXPLAIN never executes, so placeholders need no values."""
        result = conn.execute("EXPLAIN REWRITE SELECT PROVENANCE a FROM t WHERE a > ?")
        assert any("?" in row[0] for row in result.relation.rows)


class TestPermDBShim:
    def test_constructor_warns(self):
        with pytest.warns(DeprecationWarning, match="repro.connect"):
            PermDB()

    def test_shim_runs_the_old_quickstart(self):
        """The pre-2.0 quickstart (module docstring of the seed) must
        keep working verbatim on the shim."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            db = PermDB()
        db.execute("CREATE TABLE messages (mid int, text text, uid int)")
        db.execute("INSERT INTO messages VALUES (1, 'lorem ipsum', 3)")
        result = db.execute("SELECT PROVENANCE text FROM messages")
        assert result.columns == [
            "text",
            "prov_messages_mid",
            "prov_messages_text",
            "prov_messages_uid",
        ]
        assert result.rows == [("lorem ipsum", 1, "lorem ipsum", 3)]

    def test_shim_is_a_connection(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            db = PermDB()
        assert isinstance(db, Connection)
        # New-style API still reachable through the shim.
        db.execute("CREATE TABLE t (a int); INSERT INTO t VALUES (1)")
        assert db.cursor().execute("SELECT a FROM t").fetchall() == [(1,)]
        assert db.prepare("SELECT a FROM t").execute().rows == [(1,)]
