"""Engine tests: DDL, DML, EXPLAIN, profiling, error paths."""

from __future__ import annotations

import pytest

from repro import AnalyzeError, CatalogError, ExecutionError, PermDB, PermError, connect


@pytest.fixture
def db():
    return connect()


class TestDDL:
    def test_create_insert_select(self, db):
        db.run("CREATE TABLE t (a int, b text)")
        status = db.run("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert status.rows == [("INSERT 2",)]
        assert len(db.run("SELECT * FROM t")) == 2

    def test_create_table_as(self, db):
        db.run("CREATE TABLE t (a int); INSERT INTO t VALUES (1), (2), (3)")
        db.run("CREATE TABLE big AS SELECT a FROM t WHERE a > 1")
        assert sorted(db.run("SELECT * FROM big").rows) == [(2,), (3,)]

    def test_create_duplicate_rejected(self, db):
        db.run("CREATE TABLE t (a int)")
        with pytest.raises(CatalogError):
            db.run("CREATE TABLE t (a int)")
        db.run("CREATE TABLE IF NOT EXISTS t (a int)")  # no error

    def test_drop(self, db):
        db.run("CREATE TABLE t (a int)")
        db.run("DROP TABLE t")
        with pytest.raises(AnalyzeError):
            db.run("SELECT * FROM t")
        db.run("DROP TABLE IF EXISTS t")  # no error

    def test_view_lifecycle(self, db):
        db.run("CREATE TABLE t (a int); INSERT INTO t VALUES (1)")
        db.run("CREATE VIEW v AS SELECT a + 1 AS b FROM t")
        assert db.run("SELECT b FROM v").rows == [(2,)]
        db.run("CREATE OR REPLACE VIEW v AS SELECT a + 10 AS b FROM t")
        assert db.run("SELECT b FROM v").rows == [(11,)]
        db.run("DROP VIEW v")

    def test_view_validated_at_creation(self, db):
        with pytest.raises(AnalyzeError):
            db.run("CREATE VIEW v AS SELECT zzz FROM missing")

    def test_create_view_reflects_later_inserts(self, db):
        db.run("CREATE TABLE t (a int)")
        db.run("CREATE VIEW v AS SELECT a FROM t")
        db.run("INSERT INTO t VALUES (7)")
        assert db.run("SELECT * FROM v").rows == [(7,)]


class TestDML:
    @pytest.fixture
    def table(self, db):
        db.run("CREATE TABLE t (a int, b text); INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')")
        return db

    def test_insert_column_subset(self, table):
        table.run("INSERT INTO t (b) VALUES ('only-b')")
        assert (None, "only-b") in table.run("SELECT * FROM t").rows

    def test_insert_expression_values(self, table):
        table.run("INSERT INTO t VALUES (2 + 2, upper('w'))")
        assert (4, "W") in table.run("SELECT * FROM t").rows

    def test_insert_subquery_value(self, table):
        table.run("INSERT INTO t VALUES ((SELECT max(a) FROM t) + 1, 'next')")
        assert (4, "next") in table.run("SELECT * FROM t").rows

    def test_insert_from_query(self, table):
        status = table.run("INSERT INTO t SELECT a + 10, b FROM t WHERE a <= 2")
        assert status.rows == [("INSERT 2",)]
        assert len(table.run("SELECT * FROM t")) == 5

    def test_insert_arity_mismatch(self, table):
        with pytest.raises(AnalyzeError):
            table.run("INSERT INTO t VALUES (1)")

    def test_delete(self, table):
        status = table.run("DELETE FROM t WHERE a >= 2")
        assert status.rows == [("DELETE 2",)]
        assert table.run("SELECT a FROM t").rows == [(1,)]

    def test_delete_all(self, table):
        assert table.run("DELETE FROM t").rows == [("DELETE 3",)]

    def test_update(self, table):
        status = table.run("UPDATE t SET a = a * 10 WHERE b <> 'y'")
        assert status.rows == [("UPDATE 2",)]
        assert sorted(table.run("SELECT a FROM t").rows) == [(2,), (10,), (30,)]

    def test_update_with_subquery(self, table):
        table.run("UPDATE t SET a = (SELECT max(a) FROM t) WHERE b = 'x'")
        assert (3, "x") in table.run("SELECT * FROM t").rows

    def test_dml_on_missing_table(self, db):
        with pytest.raises(CatalogError):
            db.run("INSERT INTO missing VALUES (1)")
        with pytest.raises(CatalogError):
            db.run("DELETE FROM missing")


class TestExplainAndProfile:
    @pytest.fixture
    def table(self, db):
        db.run("CREATE TABLE t (a int); INSERT INTO t VALUES (1), (2)")
        return db

    def test_explain_rewrite_is_sql(self, table):
        text = table.explain("SELECT PROVENANCE a FROM t", mode="rewrite")
        assert "prov_t_a" in text and "SELECT" in text

    def test_explain_algebra_shows_both_trees(self, table):
        text = table.explain("SELECT PROVENANCE a FROM t", mode="algebra")
        assert "original query" in text and "rewritten query" in text

    def test_explain_plan(self, table):
        text = table.explain("SELECT a FROM t WHERE a > 1", mode="plan")
        assert "Scan(t)" in text

    def test_explain_statement_form(self, table):
        result = table.run("EXPLAIN REWRITE SELECT PROVENANCE a FROM t")
        assert result.columns == ["plan"]
        assert any("prov_t_a" in row[0] for row in result.rows)

    def test_profile_stages(self, table):
        profile = table.profile("SELECT PROVENANCE a FROM t")
        names = [t.name for t in profile.timings]
        assert names == ["parse", "analyze", "provenance rewrite", "optimize", "plan", "execute"]
        assert profile.total_seconds > 0
        assert profile.result is not None and len(profile.result) == 2
        assert profile.provenance_attrs == ("prov_t_a",)
        assert "ms" in profile.summary()

    def test_profile_without_execution(self, table):
        profile = table.profile("SELECT a FROM t", execute=False)
        assert profile.result is None
        with pytest.raises(KeyError):
            profile.timing("execute")

    def test_profile_rejects_ddl(self, table):
        with pytest.raises(PermError):
            table.profile("CREATE TABLE x (a int)")


class TestSessionBasics:
    def test_connect_helper(self):
        from repro import Connection

        conn = connect()
        assert isinstance(conn, Connection)
        # The deprecated shim is a Connection too, so either front end
        # works wherever the other is expected.
        assert issubclass(PermDB, Connection)

    def test_multi_statement_returns_last(self, db):
        result = db.run("CREATE TABLE t (a int); INSERT INTO t VALUES (1); SELECT a FROM t")
        assert result.rows == [(1,)]

    def test_empty_statement_rejected(self, db):
        with pytest.raises(PermError):
            db.run("   ")

    def test_load_rows(self, db):
        db.run("CREATE TABLE t (a int, b text)")
        assert db.load_rows("t", [(1, "x"), (2, "y")]) == 2
        assert len(db.run("SELECT * FROM t")) == 2

    def test_runtime_error_surfaces(self, db):
        db.run("CREATE TABLE t (a int); INSERT INTO t VALUES (0)")
        with pytest.raises(ExecutionError):
            db.run("SELECT 1 / a FROM t")

    def test_docstring_example(self):
        with pytest.warns(DeprecationWarning, match="repro.connect"):
            db = PermDB()
        # The shim's execute() returns the Relation directly.
        db.execute("CREATE TABLE r (a int, b text)")
        db.execute("INSERT INTO r VALUES (1, 'x'), (2, 'y')")
        assert db.execute("SELECT PROVENANCE a FROM r WHERE a > 1").columns == [
            "a",
            "prov_r_a",
            "prov_r_b",
        ]
