"""Optimizer-on vs optimizer-off differential.

The cost-based optimizer (join-back elimination, column pruning, join
reordering, hash-side selection) is the first stage that changes plan
*shape* after the provenance rewrite — so it is proven harmless the hard
way: every generated corpus query runs on all three engines under both
``optimizer="cost"`` and ``optimizer="rules"``, and all six outcomes
must be identical — rows **in identical order**, cursor description,
provenance columns, or the same error.

Row-order identity across modes is not a fluke of the corpus: the
reorderer only re-associates join regions over a fixed leaf sequence
(join output order is leaf-sequence-lexicographic on every engine),
pruning only drops dead projection columns, and join-back elimination
only removes at-most-one-match left joins — each transformation
preserves order by construction.
"""

from __future__ import annotations

import pytest

from harness import assert_engines_agree
from querygen import generate_query
from repro.workloads.forum import create_forum_db
from repro.workloads.queries import QUERY_CLASSES, with_provenance
from repro.workloads.tpch import TpchConfig, create_tpch_db

CORE_SEEDS = range(0, 120, 2)
EXHAUSTIVE_SEEDS = [s for s in range(180) if s not in CORE_SEEDS]
WORKLOADS = ("forum", "tpch")

_TPCH_CONFIG = TpchConfig(customers=25, orders=90, parts=15)


@pytest.fixture(scope="session")
def optimizer_pairs():
    """{workload: {engine/mode label: Connection}} — identical data, six
    configurations: row/vectorized/sqlite x cost/rules."""
    groups = {}
    for workload, build in (
        ("forum", lambda engine, optimizer: create_forum_db(engine=engine, optimizer=optimizer)),
        (
            "tpch",
            lambda engine, optimizer: create_tpch_db(
                _TPCH_CONFIG, engine=engine, optimizer=optimizer
            ),
        ),
    ):
        groups[workload] = {
            f"{engine}/{mode}": build(engine, mode)
            for engine in ("row", "vectorized", "sqlite")
            for mode in ("cost", "rules")
        }
    return groups


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("seed", CORE_SEEDS)
def test_generated_query_agrees_across_optimizer_modes(optimizer_pairs, workload, seed):
    sql = generate_query(seed, workload)
    assert_engines_agree(optimizer_pairs[workload], sql)


@pytest.mark.exhaustive
@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("seed", EXHAUSTIVE_SEEDS)
def test_generated_query_agrees_across_optimizer_modes_exhaustive(
    optimizer_pairs, workload, seed
):
    sql = generate_query(seed, workload)
    assert_engines_agree(optimizer_pairs[workload], sql)


# Curated 3-relation chains whose estimated cost genuinely favors a
# different association on the fixture data — guaranteeing the corpus
# proof covers plans the reorderer actually re-shaped (generated seeds
# only reorder occasionally at this data scale).
CHAIN_QUERIES = [
    "SELECT c.c_name, l.l_quantity FROM customer c "
    "JOIN orders o ON c.c_custkey = o.o_custkey "
    "JOIN lineitem l ON o.o_orderkey = l.l_orderkey WHERE l.l_quantity > 45",
    "SELECT PROVENANCE o.o_orderstatus, count(*) AS n FROM customer c "
    "JOIN orders o ON c.c_custkey = o.o_custkey "
    "JOIN lineitem l ON o.o_orderkey = l.l_orderkey "
    "WHERE l.l_quantity > 45 GROUP BY o.o_orderstatus",
    "SELECT p.p_name FROM part p JOIN lineitem l ON p.p_partkey = l.l_partkey "
    "JOIN orders o ON l.l_orderkey = o.o_orderkey WHERE o.o_totalprice > 9000.0",
    "SELECT PROVENANCE p.p_name, count(*) AS n FROM part p "
    "JOIN lineitem l ON p.p_partkey = l.l_partkey "
    "JOIN orders o ON l.l_orderkey = o.o_orderkey "
    "WHERE o.o_orderstatus = 'F' GROUP BY p.p_name",
]


@pytest.mark.parametrize("sql", CHAIN_QUERIES, ids=range(len(CHAIN_QUERIES)))
def test_reordered_chain_agrees_across_modes(optimizer_pairs, sql):
    connections = optimizer_pairs["tpch"]
    before = connections["row/cost"].counters.joins_reordered
    outcome = assert_engines_agree(connections, sql)
    assert outcome[0] == "ok", outcome
    # The cost-mode row connection must actually have re-shaped the plan
    # (a fresh plan is only built on the first run of each query; the
    # counter check therefore tolerates cache hits after the first).
    cached = connections["row/cost"].counters.joins_reordered
    assert cached >= before
    assert connections["row/cost"].counters.joins_reordered >= 1


_WORKLOAD_QUERIES = [
    (f"{class_name}:{query_name}", sql)
    for class_name, queries in QUERY_CLASSES.items()
    for query_name, sql in queries.items()
]


@pytest.mark.parametrize(
    "sql",
    [with_provenance(sql) for _, sql in _WORKLOAD_QUERIES],
    ids=[name for name, _ in _WORKLOAD_QUERIES],
)
def test_workload_provenance_query_agrees_across_optimizer_modes(optimizer_pairs, sql):
    outcome = assert_engines_agree(optimizer_pairs["tpch"], sql)
    assert outcome[0] == "ok", f"provenance query failed on all configurations: {outcome}"
