"""Cross-engine differential tests: the row and vectorized engines must
produce identical rows (in identical order), identical cursor
descriptions and identical provenance columns for every query —
generated or curated — or fail with the same error.
"""

from __future__ import annotations

import pytest

from harness import assert_engines_agree
from querygen import generate_query
from repro.workloads.forum import (
    FORUM_QUERIES,
    SQLPLE_AGGREGATION,
    SQLPLE_BASERELATION,
    SQLPLE_QUERYING_PROVENANCE,
)
from repro.workloads.queries import QUERY_CLASSES, with_provenance

# 120 seeds x 2 workloads = 240 generated differential cases (the
# acceptance floor is 200).
GENERATED_SEEDS = range(120)
WORKLOADS = ("forum", "tpch")


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("seed", GENERATED_SEEDS)
def test_generated_query_agrees(engine_pairs, workload, seed):
    sql = generate_query(seed, workload)
    assert_engines_agree(engine_pairs[workload], sql)


_WORKLOAD_QUERIES = [
    (class_name, query_name, sql)
    for class_name, queries in QUERY_CLASSES.items()
    for query_name, sql in queries.items()
]


@pytest.mark.parametrize(
    "sql",
    [sql for _, _, sql in _WORKLOAD_QUERIES],
    ids=[name for _, name, _ in _WORKLOAD_QUERIES],
)
def test_workload_query_agrees(engine_pairs, sql):
    assert_engines_agree(engine_pairs["tpch"], sql)


@pytest.mark.parametrize(
    "sql",
    [with_provenance(sql) for _, _, sql in _WORKLOAD_QUERIES],
    ids=[f"prov-{name}" for _, name, _ in _WORKLOAD_QUERIES],
)
def test_workload_query_provenance_agrees(engine_pairs, sql):
    outcome = assert_engines_agree(engine_pairs["tpch"], sql)
    assert outcome[0] == "ok", f"provenance query failed on both engines: {outcome}"
    assert outcome[3], "provenance query produced no provenance columns"


_FORUM_QUERIES = [
    FORUM_QUERIES["q1"],
    FORUM_QUERIES["q3"],
    with_provenance(FORUM_QUERIES["q1"]),
    with_provenance(FORUM_QUERIES["q3"]),
    SQLPLE_AGGREGATION,
    SQLPLE_QUERYING_PROVENANCE,
    SQLPLE_BASERELATION,
]


@pytest.mark.parametrize("sql", _FORUM_QUERIES, ids=range(len(_FORUM_QUERIES)))
def test_forum_query_agrees(engine_pairs, sql):
    outcome = assert_engines_agree(engine_pairs["forum"], sql)
    assert outcome[0] == "ok"


def test_generated_corpus_is_mostly_executable(engine_pairs):
    """The harness is only meaningful if the generator produces valid
    queries: at least 95% of the corpus must execute (not error)."""
    executed = 0
    total = 0
    for workload in WORKLOADS:
        pair = engine_pairs[workload]
        connection = pair["row"]
        for seed in GENERATED_SEEDS:
            total += 1
            try:
                connection.execute(generate_query(seed, workload))
                executed += 1
            except Exception:
                pass
    assert executed / total >= 0.95, f"only {executed}/{total} generated queries ran"
