"""Cross-engine differential tests: the row, vectorized and sqlite
engines must produce identical rows (in identical order), identical
cursor descriptions and identical provenance columns for every query —
generated or curated — or fail with the same error.

The generated corpus is 360 queries (180 seeds x 2 workloads), run
three-way. The first 120 seeds run in the default (tier-1) suite; the
remaining 60 carry the ``exhaustive`` marker so the full corpus runs in
the dedicated CI differential job without growing tier-1 runtime
(``pytest -m "exhaustive or not exhaustive" tests/differential``).
"""

from __future__ import annotations

import pytest

from harness import assert_engines_agree
from querygen import generate_query
from repro.workloads.forum import (
    FORUM_QUERIES,
    SQLPLE_AGGREGATION,
    SQLPLE_BASERELATION,
    SQLPLE_QUERYING_PROVENANCE,
)
from repro.workloads.queries import QUERY_CLASSES, with_provenance

# 180 seeds x 2 workloads = 360 generated differential cases.
CORE_SEEDS = range(120)
EXHAUSTIVE_SEEDS = range(120, 180)
GENERATED_SEEDS = range(180)
WORKLOADS = ("forum", "tpch")


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("seed", CORE_SEEDS)
def test_generated_query_agrees(engine_pairs, workload, seed):
    sql = generate_query(seed, workload)
    assert_engines_agree(engine_pairs[workload], sql)


@pytest.mark.exhaustive
@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("seed", EXHAUSTIVE_SEEDS)
def test_generated_query_agrees_exhaustive(engine_pairs, workload, seed):
    sql = generate_query(seed, workload)
    assert_engines_agree(engine_pairs[workload], sql)


_WORKLOAD_QUERIES = [
    (class_name, query_name, sql)
    for class_name, queries in QUERY_CLASSES.items()
    for query_name, sql in queries.items()
]


@pytest.mark.parametrize(
    "sql",
    [sql for _, _, sql in _WORKLOAD_QUERIES],
    ids=[name for _, name, _ in _WORKLOAD_QUERIES],
)
def test_workload_query_agrees(engine_pairs, sql):
    assert_engines_agree(engine_pairs["tpch"], sql)


@pytest.mark.parametrize(
    "sql",
    [with_provenance(sql) for _, _, sql in _WORKLOAD_QUERIES],
    ids=[f"prov-{name}" for _, name, _ in _WORKLOAD_QUERIES],
)
def test_workload_query_provenance_agrees(engine_pairs, sql):
    outcome = assert_engines_agree(engine_pairs["tpch"], sql)
    assert outcome[0] == "ok", f"provenance query failed on all engines: {outcome}"
    assert outcome[3], "provenance query produced no provenance columns"


_FORUM_QUERIES = [
    FORUM_QUERIES["q1"],
    FORUM_QUERIES["q3"],
    with_provenance(FORUM_QUERIES["q1"]),
    with_provenance(FORUM_QUERIES["q3"]),
    SQLPLE_AGGREGATION,
    SQLPLE_QUERYING_PROVENANCE,
    SQLPLE_BASERELATION,
]


@pytest.mark.parametrize("sql", _FORUM_QUERIES, ids=range(len(_FORUM_QUERIES)))
def test_forum_query_agrees(engine_pairs, sql):
    outcome = assert_engines_agree(engine_pairs["forum"], sql)
    assert outcome[0] == "ok"


def test_generated_corpus_is_mostly_executable(engine_pairs):
    """The harness is only meaningful if the generator produces valid
    queries: at least 95% of the corpus must execute (not error)."""
    executed = 0
    total = 0
    for workload in WORKLOADS:
        connection = engine_pairs[workload]["row"]
        for seed in GENERATED_SEEDS:
            total += 1
            try:
                connection.execute(generate_query(seed, workload))
                executed += 1
            except Exception:
                pass
    assert executed / total >= 0.95, f"only {executed}/{total} generated queries ran"


def test_corpus_exercises_new_shapes():
    """The satellite constructs actually appear in the corpus: explicit
    LEFT OUTER JOIN, HAVING over a join, and depth-2 sublink nesting."""
    corpus = [
        generate_query(seed, workload)
        for workload in WORKLOADS
        for seed in GENERATED_SEEDS
    ]
    assert any("LEFT OUTER JOIN" in sql for sql in corpus)
    assert any(
        "HAVING" in sql and " JOIN " in sql and "GROUP BY" in sql for sql in corpus
    )

    def sublink_depth(sql: str) -> int:
        depth = best = 0
        tokens = sql.upper().replace("(", " ( ").replace(")", " ) ").split()
        opens = []
        for i, token in enumerate(tokens):
            if token == "(":
                is_sub = i + 1 < len(tokens) and tokens[i + 1] == "SELECT"
                opens.append(is_sub)
                if is_sub:
                    depth += 1
                    best = max(best, depth)
            elif token == ")" and opens:
                if opens.pop():
                    depth -= 1
        return best

    assert any(sublink_depth(sql) >= 2 for sql in corpus)
