"""Execution helpers shared by the differential and invariant tests.

Generalized to N engines: every fixture is a ``{engine: Connection}``
mapping over identical data, and agreement means identical outcome
tuples — rows (in order), cursor description, provenance columns — or
the same error (type and message) from every engine.
"""

from __future__ import annotations


def run_engines(connections, sql: str):
    """Execute *sql* on every engine; returns {engine: outcome}.

    An outcome is either ``("ok", rows, description, provenance_attrs)``
    or ``("error", exception type name, message)`` — engines must agree
    on errors too (same stage, same complaint).
    """
    outcomes = {}
    for engine, conn in connections.items():
        try:
            cursor = conn.execute(sql)
            outcomes[engine] = (
                "ok",
                cursor.fetchall(),
                cursor.description,
                tuple(cursor.relation.provenance_attrs),
            )
        except Exception as exc:  # noqa: BLE001 - compared structurally
            outcomes[engine] = ("error", type(exc).__name__, str(exc))
    return outcomes


def assert_engines_agree(connections, sql: str):
    """All engines in *connections* must produce identical outcomes for
    *sql*; returns the (shared) outcome."""
    outcomes = run_engines(connections, sql)
    engines = list(outcomes)
    baseline = outcomes[engines[0]]
    for engine in engines[1:]:
        assert outcomes[engine] == baseline, (
            f"engines disagree on:\n  {sql}\n"
            + "\n".join(f"{e}: {outcomes[e]!r}" for e in engines)
        )
    return baseline
