"""Execution helpers shared by the differential and invariant tests."""

from __future__ import annotations


def run_both(pair, sql: str):
    """Execute *sql* on both engines; returns {engine: outcome}.

    An outcome is either ``("ok", rows, description, provenance_attrs)``
    or ``("error", exception type name, message)`` — engines must agree
    on errors too (same stage, same complaint).
    """
    outcomes = {}
    for engine, conn in pair.items():
        try:
            cursor = conn.execute(sql)
            outcomes[engine] = (
                "ok",
                cursor.fetchall(),
                cursor.description,
                tuple(cursor.relation.provenance_attrs),
            )
        except Exception as exc:  # noqa: BLE001 - compared structurally
            outcomes[engine] = ("error", type(exc).__name__, str(exc))
    return outcomes


def assert_engines_agree(pair, sql: str):
    outcomes = run_both(pair, sql)
    row_outcome = outcomes["row"]
    vec_outcome = outcomes["vectorized"]
    assert row_outcome == vec_outcome, (
        f"engines disagree on:\n  {sql}\n"
        f"row:        {row_outcome!r}\nvectorized: {vec_outcome!r}"
    )
    return row_outcome
