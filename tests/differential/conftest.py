"""Per-engine fixtures for the cross-engine differential harness.

Each workload database is built once per execution engine with
identical deterministic content, so any result difference within a
group is attributable to the engines alone. The engine matrix is the
backend registry's differential set (``row``, ``vectorized``,
``sqlite``, ``sqlite-partition``, plus ``duckdb``/third-party backends
wherever they are registered) — registering a backend automatically
enrolls it in every agreement assertion here.
"""

from __future__ import annotations

import pytest

from repro.backend import differential_engines
from repro.workloads.forum import create_forum_db
from repro.workloads.tpch import TpchConfig, create_tpch_db

ENGINES = differential_engines()

# Small but non-trivial: plenty of value/NULL variety, fast to build.
_TPCH_CONFIG = TpchConfig(customers=25, orders=90, parts=15)

# Tiny batches so every vectorized query crosses batch boundaries —
# scan chunking, hash-join flushing, limit/offset skipping and the
# row-fallback adapter all run their multi-batch paths under the
# differential assertions (the production default is ~1024).
_TEST_BATCH_SIZE = 13


def _shrink_batches(connection):
    connection.pipeline.planner.batch_size = _TEST_BATCH_SIZE
    return connection


def _build(factory, engine):
    connection = factory(engine=engine)
    if engine == "vectorized":
        _shrink_batches(connection)
    return connection


@pytest.fixture(scope="session")
def engine_pairs():
    """{workload: {engine: Connection}} with identical data per group."""
    return {
        "forum": {
            engine: _build(create_forum_db, engine) for engine in ENGINES
        },
        "tpch": {
            engine: _build(
                lambda engine: create_tpch_db(_TPCH_CONFIG, engine=engine), engine
            )
            for engine in ENGINES
        },
    }
