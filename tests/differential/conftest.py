"""Per-engine fixtures for the cross-engine differential harness.

Each workload database is built once per execution engine with
identical deterministic content, so any result difference within a
group is attributable to the engines alone. The harness asserts
agreement across all three: ``row``, ``vectorized`` and ``sqlite``.
"""

from __future__ import annotations

import pytest

from repro.workloads.forum import create_forum_db
from repro.workloads.tpch import TpchConfig, create_tpch_db

ENGINES = ("row", "vectorized", "sqlite")

# Small but non-trivial: plenty of value/NULL variety, fast to build.
_TPCH_CONFIG = TpchConfig(customers=25, orders=90, parts=15)

# Tiny batches so every vectorized query crosses batch boundaries —
# scan chunking, hash-join flushing, limit/offset skipping and the
# row-fallback adapter all run their multi-batch paths under the
# differential assertions (the production default is ~1024).
_TEST_BATCH_SIZE = 13


def _shrink_batches(connection):
    connection.pipeline.planner.batch_size = _TEST_BATCH_SIZE
    return connection


@pytest.fixture(scope="session")
def engine_pairs():
    """{workload: {engine: Connection}} with identical data per group."""
    return {
        "forum": {
            "row": create_forum_db(engine="row"),
            "vectorized": _shrink_batches(create_forum_db(engine="vectorized")),
            "sqlite": create_forum_db(engine="sqlite"),
        },
        "tpch": {
            "row": create_tpch_db(_TPCH_CONFIG, engine="row"),
            "vectorized": _shrink_batches(
                create_tpch_db(_TPCH_CONFIG, engine="vectorized")
            ),
            "sqlite": create_tpch_db(_TPCH_CONFIG, engine="sqlite"),
        },
    }
