"""Deterministic random query generator over the workload schemas.

Generates well-typed SQL over the paper's forum database and the
TPC-H-like benchmark database: select/project/filter, two-table joins of
every kind (including the explicit ``LEFT OUTER JOIN`` spelling),
grouped and global aggregation with multi-aggregate HAVING clauses over
joins, set operations, sublinks (IN / EXISTS / scalar) nested up to
depth 2, DISTINCT, ORDER BY and LIMIT — optionally wrapped in ``SELECT
PROVENANCE`` with a random contribution semantics.

Queries are generated from an explicit seed (``generate_query(seed)``)
so every differential-test failure is reproducible by its seed alone.
The generator only emits queries that cannot raise *data-dependent*
runtime errors (no division by columns, no mixed-type comparisons), so
all engines must agree on results — not merely on error behavior.
Integer constants at and just past the int64 boundary (2^63 and its
neighbours, both signs) appear in comparison, projection-arithmetic and
aggregate positions, pinning exact unbounded-integer semantics across
all three engines.
"""

from __future__ import annotations

import random

# Column catalogs: name -> type per table, per workload.
FORUM_TABLES: dict[str, dict[str, str]] = {
    "messages": {"mid": "int", "text": "text", "uid": "int"},
    "users": {"uid": "int", "name": "text"},
    "imports": {"mid": "int", "text": "text", "origin": "text"},
    "approved": {"uid": "int", "mid": "int"},
}

TPCH_TABLES: dict[str, dict[str, str]] = {
    "customer": {
        "c_custkey": "int",
        "c_name": "text",
        "c_acctbal": "float",
        "c_mktsegment": "text",
        "c_nationkey": "int",
    },
    "orders": {
        "o_orderkey": "int",
        "o_custkey": "int",
        "o_totalprice": "float",
        "o_orderstatus": "text",
    },
    "lineitem": {
        "l_orderkey": "int",
        "l_partkey": "int",
        "l_quantity": "int",
        "l_extendedprice": "float",
        "l_returnflag": "text",
    },
    "part": {"p_partkey": "int", "p_name": "text", "p_retailprice": "float"},
}

# Equi-join pairs that produce interesting (non-empty) matches.
TPCH_JOINS = [
    ("customer", "c_custkey", "orders", "o_custkey"),
    ("orders", "o_orderkey", "lineitem", "l_orderkey"),
    ("part", "p_partkey", "lineitem", "l_partkey"),
]
FORUM_JOINS = [
    ("messages", "uid", "users", "uid"),
    ("messages", "mid", "approved", "mid"),
    ("users", "uid", "approved", "uid"),
    ("messages", "mid", "imports", "mid"),
]

# Three-table chains (two pairs sharing the middle table) so the corpus
# contains join regions the cost-based reorderer can actually re-shape.
TPCH_CHAINS = [
    (
        ("customer", "c_custkey", "orders", "o_custkey"),
        ("orders", "o_orderkey", "lineitem", "l_orderkey"),
    ),
    (
        ("part", "p_partkey", "lineitem", "l_partkey"),
        ("lineitem", "l_orderkey", "orders", "o_orderkey"),
    ),
]
FORUM_CHAINS = [
    (
        ("messages", "uid", "users", "uid"),
        ("users", "uid", "approved", "uid"),
    ),
    (
        ("imports", "mid", "messages", "mid"),
        ("messages", "uid", "users", "uid"),
    ),
]

_TEXT_CONSTS = {
    "forum": ["'lorem ipsum ...'", "'superForum'", "'Gert'", "'hi%'", "'x'"],
    "tpch": ["'O'", "'F'", "'R'", "'AUTOMOBILE'", "'BUILDING'", "'N'"],
}
# int64-boundary magnitudes (2^63 and its neighbours): emitted in
# comparison, arithmetic and aggregate positions so the corpus exercises
# exact-integer semantics — the engines keep Python bignums, the sqlite
# backend must rewrite/escape rather than silently promote to REAL.
_BOUNDARY_INTS = [
    9223372036854775806,  # 2^63 - 2
    9223372036854775807,  # 2^63 - 1 (int64 max)
    9223372036854775808,  # 2^63 (first value beyond int64)
]
_SIGNED_BOUNDARY_INTS = _BOUNDARY_INTS + [-b for b in _BOUNDARY_INTS]
_JOIN_KINDS = [
    "JOIN",
    "LEFT JOIN",
    "LEFT OUTER JOIN",
    "RIGHT JOIN",
    "FULL JOIN",
    "FULL OUTER JOIN",
]
_CONTRIBUTIONS = ["", " ON CONTRIBUTION (INFLUENCE)", " ON CONTRIBUTION (COPY PARTIAL)"]


class _Source:
    """One FROM item: alias -> available columns with types."""

    def __init__(self, sql: str, columns: dict[str, str]):
        self.sql = sql
        self.columns = columns  # qualified name -> type


def _single_table(rng: random.Random, tables: dict[str, dict[str, str]]) -> _Source:
    name = rng.choice(sorted(tables))
    alias = f"t{rng.randrange(10)}"
    columns = {f"{alias}.{c}": t for c, t in tables[name].items()}
    return _Source(f"{name} {alias}", columns)


def _join(rng: random.Random, workload: str) -> _Source:
    tables = TPCH_TABLES if workload == "tpch" else FORUM_TABLES
    if rng.random() < 0.35:
        return _chain_join(rng, workload, tables)
    joins = TPCH_JOINS if workload == "tpch" else FORUM_JOINS
    left, lcol, right, rcol = rng.choice(joins)
    la, ra = "a", "b"
    kind = rng.choice(_JOIN_KINDS)
    condition = f"{la}.{lcol} = {ra}.{rcol}"
    if rng.random() < 0.3:
        # Add a residual conjunct so hash joins keep a residual filter.
        extra_col = rng.choice(sorted(tables[left]))
        condition += f" AND {la}.{extra_col} {_null_safe_cmp(rng)} {la}.{extra_col}"
    sql = f"{left} {la} {kind} {right} {ra} ON {condition}"
    columns = {f"{la}.{c}": t for c, t in tables[left].items()}
    columns.update({f"{ra}.{c}": t for c, t in tables[right].items()})
    return _Source(sql, columns)


def _chain_join(
    rng: random.Random, workload: str, tables: dict[str, dict[str, str]]
) -> _Source:
    """A three-table chain join (syntactically left-deep), mixing inner
    and outer kinds — the region shape the cost-based join reorderer
    re-associates, run under the optimizer-on/off differential."""
    chains = TPCH_CHAINS if workload == "tpch" else FORUM_CHAINS
    (t1, c1, t2, c2), (m, mc, t3, c3) = rng.choice(chains)
    assert m == t2 or m == t1  # the middle pair starts from a joined table
    aliases = {t1: "a", t2: "b"}
    third_alias = "c"
    # Biased toward inner joins: all-inner chains form the 3-term join
    # regions the reorderer can re-associate; outer kinds still appear
    # to cover the region-boundary behavior.
    first_kind = rng.choice(["JOIN", "JOIN", "JOIN"] + _JOIN_KINDS)
    second_kind = rng.choice(["JOIN", "JOIN", "JOIN", "LEFT JOIN"])
    middle_alias = aliases[m]
    sql = (
        f"{t1} a {first_kind} {t2} b ON a.{c1} = b.{c2} "
        f"{second_kind} {t3} {third_alias} ON {middle_alias}.{mc} = {third_alias}.{c3}"
    )
    columns = {f"a.{c}": t for c, t in tables[t1].items()}
    columns.update({f"b.{c}": t for c, t in tables[t2].items()})
    columns.update({f"{third_alias}.{c}": t for c, t in tables[t3].items()})
    return _Source(sql, columns)


def _null_safe_cmp(rng: random.Random) -> str:
    return rng.choice(["=", "IS NOT DISTINCT FROM"])


def _columns_of_type(source: _Source, type_: str) -> list[str]:
    return [c for c, t in source.columns.items() if t == type_]


def _numeric_columns(source: _Source) -> list[str]:
    return [c for c, t in source.columns.items() if t in ("int", "float")]


def _predicate(rng: random.Random, source: _Source, workload: str, depth: int = 0) -> str:
    roll = rng.random()
    if depth < 2 and roll < 0.15:
        return f"({_predicate(rng, source, workload, depth + 1)} AND {_predicate(rng, source, workload, depth + 1)})"
    if depth < 2 and roll < 0.3:
        return f"({_predicate(rng, source, workload, depth + 1)} OR {_predicate(rng, source, workload, depth + 1)})"
    if roll < 0.38:
        return f"NOT ({_predicate(rng, source, workload, depth + 1)})"
    if roll < 0.5:
        column = rng.choice(sorted(source.columns))
        return f"{column} IS {rng.choice(['NULL', 'NOT NULL'])}"
    text_columns = _columns_of_type(source, "text")
    if roll < 0.62 and text_columns:
        column = rng.choice(text_columns)
        if rng.random() < 0.5:
            return f"{column} LIKE {rng.choice(_TEXT_CONSTS[workload])}"
        return f"{column} {rng.choice(['=', '<>', '<', '>'])} {rng.choice(_TEXT_CONSTS[workload])}"
    numeric = _numeric_columns(source)
    if numeric:
        column = rng.choice(numeric)
        if rng.random() < 0.3 and len(numeric) > 1:
            other = rng.choice(numeric)
            return f"{column} {rng.choice(['=', '<>', '<', '<=', '>', '>='])} {other}"
        if rng.random() < 0.25:
            values = ", ".join(str(rng.randrange(0, 2000)) for _ in range(rng.randint(2, 4)))
            negated = "NOT " if rng.random() < 0.3 else ""
            return f"{column} {negated}IN ({values})"
        if rng.random() < 0.1:
            constant = rng.choice(_SIGNED_BOUNDARY_INTS)
        else:
            constant = rng.choice([0, 1, 2, 3, 5, 10, 100, 1000, 50000, 200000])
        return f"{column} {rng.choice(['=', '<>', '<', '<=', '>', '>='])} {constant}"
    column = rng.choice(sorted(source.columns))
    return f"{column} IS NOT NULL"


def _projection(rng: random.Random, source: _Source) -> tuple[str, list[str]]:
    """Random select list; returns (sql, output aliases)."""
    columns = sorted(source.columns)
    count = rng.randint(1, min(4, len(columns)))
    chosen = rng.sample(columns, count)
    items, names = [], []
    for i, column in enumerate(chosen):
        name = f"c{i}"
        roll = rng.random()
        type_ = source.columns[column]
        if roll < 0.15 and type_ in ("int", "float"):
            if type_ == "int" and rng.random() < 0.3:
                # int64-boundary arithmetic: exact bignum on every
                # engine (never wrapped, never REAL).
                boundary = rng.choice(_BOUNDARY_INTS)
                shape = rng.choice(["{c} + {b}", "{c} - {b}", "-{c} - {b}", "{c} * {b}"])
                items.append(f"{shape.format(c=column, b=boundary)} AS {name}")
            else:
                items.append(f"{column} + {rng.randrange(1, 10)} AS {name}")
        elif roll < 0.25 and type_ == "text":
            items.append(f"{rng.choice(['upper', 'lower', 'length'])}({column}) AS {name}")
        elif roll < 0.33:
            items.append(
                f"CASE WHEN {column} IS NULL THEN 1 ELSE 0 END AS {name}"
            )
        else:
            items.append(f"{column} AS {name}")
        names.append(name)
    return ", ".join(items), names


def _having_clause(rng: random.Random, source: _Source) -> str:
    """A well-typed HAVING condition: one or two aggregate comparisons
    (count/sum/min/max over integer columns or counts, so no engine can
    hit a type error and float summation order stays irrelevant)."""
    int_columns = _columns_of_type(source, "int")

    def term() -> str:
        roll = rng.random()
        if roll < 0.4 or not int_columns:
            return f"count(*) {rng.choice(['>=', '>', '<>', '='])} {rng.randint(1, 3)}"
        column = rng.choice(int_columns)
        if roll < 0.7:
            func = rng.choice(["min", "max"])
            return f"{func}({column}) {rng.choice(['>', '>=', '<', '<='])} {rng.randrange(0, 500)}"
        return f"sum({column}) {rng.choice(['>', '<='])} {rng.randrange(0, 2000)}"

    if rng.random() < 0.35:
        return f" HAVING {term()} {rng.choice(['AND', 'OR'])} {term()}"
    return f" HAVING {term()}"


def _aggregate_query(rng: random.Random, source: _Source, where: str) -> str:
    numeric = _numeric_columns(source)
    group_columns = rng.sample(
        sorted(source.columns), 2 if rng.random() < 0.25 and len(source.columns) > 1 else 1
    )
    aggs = []
    for i in range(rng.randint(1, 3)):
        func = rng.choice(["count", "sum", "min", "max", "avg"])
        if func == "count" and rng.random() < 0.5:
            aggs.append(f"count(*) AS a{i}")
        elif func in ("sum", "avg"):
            int_columns = [c for c in numeric if source.columns[c] == "int"]
            if not numeric:
                aggs.append(f"count(*) AS a{i}")
            elif int_columns and rng.random() < 0.2:
                # Aggregate near the int64 boundary: per-row shifts push
                # the total past 2^63, so sum() must return the exact
                # bignum and avg() the correctly-rounded quotient on
                # every engine.
                column = rng.choice(int_columns)
                boundary = rng.choice(_BOUNDARY_INTS)
                aggs.append(f"{func}({column} + {boundary}) AS a{i}")
            else:
                distinct = "DISTINCT " if rng.random() < 0.2 else ""
                aggs.append(f"{func}({distinct}{rng.choice(numeric)}) AS a{i}")
        else:
            column = rng.choice(sorted(source.columns))
            aggs.append(f"{func}({column}) AS a{i}")
    agg_sql = ", ".join(aggs)
    if rng.random() < 0.3:  # global aggregate
        return f"SELECT {agg_sql} FROM {source.sql}{where}"
    # Joined sources always exercise GROUP BY + HAVING over a join;
    # single-table sources keep HAVING at the original 30% rate.
    joined = " JOIN " in f" {source.sql} "
    having = ""
    if joined or rng.random() < 0.3:
        having = _having_clause(rng, source)
    group_sql = ", ".join(group_columns)
    select_groups = ", ".join(f"{c} AS g{i}" for i, c in enumerate(group_columns))
    return (
        f"SELECT {select_groups}, {agg_sql} FROM {source.sql}{where} "
        f"GROUP BY {group_sql}{having}"
    )


def _setop_query(rng: random.Random, workload: str) -> str:
    tables = TPCH_TABLES if workload == "tpch" else FORUM_TABLES
    type_ = rng.choice(["int", "text"])
    candidates = [
        (table, column)
        for table, columns in sorted(tables.items())
        for column, t in sorted(columns.items())
        if t == type_
    ]
    (lt, lc), (rt, rc) = rng.sample(candidates, 2)
    op = rng.choice(["UNION", "UNION ALL", "INTERSECT", "EXCEPT"])
    left_where = f" WHERE {_predicate(rng, _Source(lt, {c: t for c, t in tables[lt].items()}), workload)}" if rng.random() < 0.5 else ""
    return f"SELECT {lc} FROM {lt}{left_where} {op} SELECT {rc} FROM {rt}"


def _sublink_query(rng: random.Random, workload: str) -> str:
    tables = TPCH_TABLES if workload == "tpch" else FORUM_TABLES
    if workload == "tpch":
        outer, okey, inner, ikey = rng.choice(TPCH_JOINS)
    else:
        outer, okey, inner, ikey = rng.choice(FORUM_JOINS)
    outer_cols = ", ".join(sorted(tables[outer]))
    kind = rng.random()
    inner_source = _Source(inner, {c: t for c, t in tables[inner].items()})
    inner_where = (
        f" WHERE {_predicate(rng, inner_source, workload)}" if rng.random() < 0.5 else ""
    )
    if kind < 0.3:
        negated = "NOT " if rng.random() < 0.3 else ""
        return (
            f"SELECT {outer_cols} FROM {outer} "
            f"WHERE {okey} {negated}IN (SELECT {ikey} FROM {inner}{inner_where})"
        )
    if kind < 0.55:
        negated = "NOT " if rng.random() < 0.3 else ""
        return (
            f"SELECT {outer_cols} FROM {outer} x WHERE {negated}EXISTS "
            f"(SELECT 1 FROM {inner} WHERE {inner}.{ikey} = x.{okey})"
        )
    if kind < 0.85:
        return _nested_sublink_query(rng, tables, outer, okey, inner, ikey)
    numeric = [c for c, t in tables[inner].items() if t in ("int", "float")]
    target = rng.choice(numeric) if numeric else ikey
    outer_numeric = [c for c, t in tables[outer].items() if t in ("int", "float")]
    subject = rng.choice(outer_numeric) if outer_numeric else okey
    return (
        f"SELECT {outer_cols} FROM {outer} "
        f"WHERE {subject} > (SELECT avg({target}) FROM {inner})"
    )


def _nested_sublink_query(
    rng: random.Random,
    tables: dict[str, dict[str, str]],
    outer: str,
    okey: str,
    inner: str,
    ikey: str,
) -> str:
    """Depth-2 sublink nesting: a sublink whose subquery itself filters
    through another sublink (IN-in-IN, EXISTS-in-EXISTS, IN-in-EXISTS)."""
    outer_cols = ", ".join(sorted(tables[outer]))
    shape = rng.random()
    if shape < 0.35:
        # IN whose subquery is itself restricted by an uncorrelated IN.
        negated = "NOT " if rng.random() < 0.25 else ""
        inner_negated = "NOT " if rng.random() < 0.25 else ""
        return (
            f"SELECT {outer_cols} FROM {outer} "
            f"WHERE {okey} {negated}IN (SELECT {ikey} FROM {inner} "
            f"WHERE {ikey} {inner_negated}IN (SELECT {okey} FROM {outer}))"
        )
    if shape < 0.7:
        # Correlated EXISTS containing a second EXISTS correlated one
        # level up (to the middle scope).
        negated = "NOT " if rng.random() < 0.25 else ""
        return (
            f"SELECT {outer_cols} FROM {outer} x WHERE {negated}EXISTS "
            f"(SELECT 1 FROM {inner} i WHERE i.{ikey} = x.{okey} AND EXISTS "
            f"(SELECT 1 FROM {outer} o2 WHERE o2.{okey} = i.{ikey}))"
        )
    # Correlated EXISTS whose subquery filters through an IN sublink.
    return (
        f"SELECT {outer_cols} FROM {outer} x WHERE EXISTS "
        f"(SELECT 1 FROM {inner} i WHERE i.{ikey} = x.{okey} "
        f"AND i.{ikey} IN (SELECT {okey} FROM {outer}))"
    )


def generate_query(seed: int, workload: str) -> str:
    """One deterministic random query for (*seed*, *workload*)."""
    rng = random.Random((seed, workload).__repr__())
    shape = rng.random()

    if shape < 0.12:
        sql = _setop_query(rng, workload)
    elif shape < 0.27:
        sql = _sublink_query(rng, workload)
    else:
        tables = TPCH_TABLES if workload == "tpch" else FORUM_TABLES
        if rng.random() < 0.45:
            source = _join(rng, workload)
        else:
            source = _single_table(rng, tables)
        where = (
            f" WHERE {_predicate(rng, source, workload)}"
            if rng.random() < 0.75
            else ""
        )
        if shape < 0.52:
            sql = _aggregate_query(rng, source, where)
        else:
            projection, names = _projection(rng, source)
            distinct = "DISTINCT " if rng.random() < 0.15 else ""
            sql = f"SELECT {distinct}{projection} FROM {source.sql}{where}"
            if rng.random() < 0.35:
                keys = ", ".join(
                    f"{n} {rng.choice(['ASC', 'DESC'])}" for n in rng.sample(names, rng.randint(1, len(names)))
                )
                sql += f" ORDER BY {keys}"
                if rng.random() < 0.5:
                    sql += f" LIMIT {rng.randint(0, 20)}"
                    if rng.random() < 0.4:
                        sql += f" OFFSET {rng.randint(0, 5)}"

    if rng.random() < 0.45:
        contribution = rng.choice(_CONTRIBUTIONS)
        sql = "SELECT PROVENANCE" + contribution + sql[len("SELECT") :]
    return sql
