"""Property-based provenance invariants, checked on every engine.

For randomly generated queries over the workload schemas, the paper's
two central guarantees must hold regardless of execution engine:

1. **Witness soundness** — every non-NULL provenance tuple fragment of a
   result row is an actual tuple of the base relation it names
   (``prov_<rel>_<attr>`` columns grouped per relation access).
2. **Result preservation** — projecting the provenance result onto the
   original (non-provenance) attributes and deduplicating yields exactly
   the original query's result set (the provenance representation
   replicates original rows once per witness).

The same seed corpus drives the differential tests; here each query is
wrapped in ``SELECT PROVENANCE`` explicitly so the invariants apply.
"""

from __future__ import annotations

import re

import pytest

from querygen import FORUM_TABLES, TPCH_TABLES, generate_query
from repro.backend import differential_engines
from repro.workloads.queries import with_provenance

# The registry's differential set, read directly rather than via
# ``from conftest import ...`` — plain-named conftest imports resolve to
# whichever test directory's conftest loaded first when several suites
# run in one invocation.
ENGINES = differential_engines()

SEEDS = range(60)

# Tables the generator references (the catalog provides their full
# column lists — the generator's column subsets are not enough to match
# every provenance column the rewriter emits).
_TABLE_NAMES = {"forum": sorted(FORUM_TABLES), "tpch": sorted(TPCH_TABLES)}


def _catalog_schemas(connection, workload):
    """Full base-table schemas (column order as stored) from the catalog."""
    return {
        # Lowercased: provenance column names are generated lowercase,
        # while the catalog preserves declaration case ("mId").
        name: [column.lower() for column in connection.catalog.table(name).schema.names]
        for name in _TABLE_NAMES[workload]
    }


def _provenance_groups(provenance_attrs, tables):
    """Split provenance column names into per-relation-access groups.

    Names follow ``prov_<table>_<column>`` with an optional access
    counter (``prov_<table>_1_<column>``) when a relation is accessed
    more than once. Returns ``[(table, [(position, column), ...]), ...]``
    with positions indexing into *provenance_attrs*.
    """
    groups: dict[tuple[str, str], list[tuple[int, str]]] = {}
    for position, name in enumerate(provenance_attrs):
        for table, columns in tables.items():
            for column in columns:
                if name == f"prov_{table}_{column}":
                    groups.setdefault((table, ""), []).append((position, column))
                    break
                match = re.fullmatch(
                    rf"prov_{re.escape(table)}_(\d+)_{re.escape(column)}", name
                )
                if match:
                    groups.setdefault((table, match.group(1)), []).append(
                        (position, column)
                    )
                    break
            else:
                continue
            break
        else:
            raise AssertionError(
                f"provenance column {name!r} does not name a base relation"
            )
    return [(table, members) for (table, _), members in groups.items()]


def _cases():
    for workload in ("forum", "tpch"):
        for seed in SEEDS:
            sql = generate_query(seed, workload)
            if "PROVENANCE" in sql or not sql.upper().startswith("SELECT "):
                continue
            yield workload, seed, sql


CASES = list(_cases())


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize(
    "workload,seed,sql", CASES, ids=[f"{w}-{s}" for w, s, _ in CASES]
)
def test_provenance_invariants(engine_pairs, engine, workload, seed, sql):
    connection = engine_pairs[workload][engine]
    original = connection.run(sql)
    prov = connection.run(with_provenance(sql))

    # Result preservation: original attributes survive unchanged and the
    # deduplicated projection equals the original result.
    width = len(original.columns)
    assert prov.original_attrs == original.columns
    assert {tuple(row[:width]) for row in prov.rows} == set(original.rows)

    # Witness soundness: each provenance fragment is a base tuple.
    if not prov.provenance_attrs:
        return
    schemas = _catalog_schemas(connection, workload)
    positions = {name: i for i, name in enumerate(prov.columns)}
    base_rows = {
        table: set(connection.run(f"SELECT * FROM {table}").rows)
        for table in schemas
    }
    column_order = {
        table: {column: i for i, column in enumerate(columns)}
        for table, columns in schemas.items()
    }
    for table, members in _provenance_groups(prov.provenance_attrs, schemas):
        members = sorted(members, key=lambda m: column_order[table][m[1]])
        assert len(members) == len(column_order[table]), (
            f"provenance group for {table} is incomplete: {members}"
        )
        value_positions = [positions[prov.provenance_attrs[p]] for p, _ in members]
        for row in prov.rows:
            fragment = tuple(row[p] for p in value_positions)
            if all(value is None for value in fragment):
                continue  # non-contributing branch padding
            assert fragment in base_rows[table], (
                f"witness {fragment!r} not in base relation {table!r} "
                f"(query: {sql})"
            )
