"""Cross-engine agreement for reads through views and materialized views.

Every registered differential engine — plus ``sqlite-partition``
explicitly pinned at 2 and at 3 shards — builds the same base data,
the same virtual views and the same materialized views (a delta-safe
join, a provenance-carrying one, and a non-delta-safe aggregate that
exercises the stale-and-recompute fallback). Agreement is asserted
before and after an identical DML burst, so incremental maintenance,
staleness marking and auto-refresh all run under the N-way comparison.

Each engine is additionally held to the tentpole identity: reading a
materialized view must be bit-identical (rows, order, column names) to
running its unfolded defining query on the same connection.
"""

from __future__ import annotations

import os

import pytest

import repro
from harness import assert_engines_agree, run_engines
from repro.backend import differential_engines

BASE_ENGINES = differential_engines()

# Label -> (engine name, forced shard count or None). The registry's
# default sqlite-partition entry also runs; the pinned variants make
# the 2- and 3-shard merges explicit members of the matrix.
ENGINE_SPECS = [(name, name, None) for name in BASE_ENGINES] + [
    ("sqlite-partition@2", "sqlite-partition", 2),
    ("sqlite-partition@3", "sqlite-partition", 3),
]

_ITEM_ROWS = [
    (1, "tool", 3, 9.5),
    (2, "toy", 1, 4.25),
    (3, "tool", 5, None),
    (4, "book", 2, 15.0),
    (5, None, 4, 1.5),
    (6, "toy", 2, 4.25),
]
_TAG_ROWS = [
    (1, "red"),
    (1, "heavy"),
    (3, "red"),
    (4, "paper"),
    (6, "red"),
    (7, "orphan"),
]

_DDL = (
    "CREATE TABLE item (id int, cat text, qty int, price float)",
    "CREATE TABLE tag (item int, label text)",
    "CREATE VIEW v_pricey AS SELECT id, cat, price FROM item WHERE price > 4",
    "CREATE MATERIALIZED VIEW mv_join AS "
    "SELECT i.id, i.cat, t.label FROM item i JOIN tag t ON t.item = i.id "
    "WHERE i.qty > 1",
    "CREATE MATERIALIZED VIEW mv_prov WITH PROVENANCE AS "
    "SELECT id, price FROM item WHERE qty >= 2",
    "CREATE MATERIALIZED VIEW mv_totals AS "
    "SELECT cat, count(*) AS n, sum(qty) AS total FROM item GROUP BY cat",
    "CREATE VIEW v_over_mv AS SELECT id, label FROM mv_join WHERE label = 'red'",
)

# The matview identity pairs: reading the view must equal running its
# unfolded definition on the same connection.
_UNFOLDED = {
    "mv_join": "SELECT i.id, i.cat, t.label FROM item i JOIN tag t "
    "ON t.item = i.id WHERE i.qty > 1",
    "mv_prov": "SELECT PROVENANCE id, price FROM item WHERE qty >= 2",
    "mv_totals": "SELECT cat, count(*) AS n, sum(qty) AS total "
    "FROM item GROUP BY cat",
}

QUERIES = (
    "SELECT id, cat, price FROM v_pricey",
    "SELECT * FROM mv_join",
    "SELECT label, count(*) FROM mv_join GROUP BY label ORDER BY label",
    "SELECT m.id, m.label, i.price FROM mv_join m JOIN item i ON i.id = m.id "
    "WHERE i.qty < 5 ORDER BY m.id, m.label",
    "SELECT * FROM mv_prov",
    "SELECT * FROM mv_totals",
    "SELECT cat, total FROM mv_totals WHERE total > 3 ORDER BY total, cat",
    "SELECT id, label FROM v_over_mv",
    "SELECT PROVENANCE id, label FROM v_over_mv",
    "SELECT v.id, v.label FROM v_over_mv v JOIN mv_prov p ON p.id = v.id",
)

# Identical burst applied to every engine between the two assertion
# rounds: inserts join the delta path, the UPDATE rewrites matching
# rows (remove + insert deltas), the DELETE shrinks a join side, and
# all of it stales mv_totals for the auto-refresh path.
_DML = (
    "INSERT INTO item VALUES (7, 'book', 6, 2.5), (8, 'toy', 0, 8.0)",
    "INSERT INTO tag VALUES (7, 'red'), (7, 'paper')",
    "UPDATE item SET qty = qty + 2 WHERE cat = 'toy'",
    "DELETE FROM tag WHERE label = 'heavy'",
    "UPDATE item SET price = 3.75 WHERE id = 3",
    "DELETE FROM item WHERE id = 5",
)


def _connect(engine: str, shards):
    if shards is None:
        return repro.connect(engine=engine)
    previous = os.environ.get("REPRO_PARTITIONS")
    os.environ["REPRO_PARTITIONS"] = str(shards)
    try:
        return repro.connect(engine=engine)
    finally:
        if previous is None:
            del os.environ["REPRO_PARTITIONS"]
        else:
            os.environ["REPRO_PARTITIONS"] = previous


def _build(connection):
    for sql in _DDL[:2]:
        connection.execute(sql)
    connection.load_rows("item", _ITEM_ROWS)
    connection.load_rows("tag", _TAG_ROWS)
    for sql in _DDL[2:]:
        connection.execute(sql)
    return connection


@pytest.fixture(scope="module")
def view_engines():
    """{label: Connection} over identical data, views and matviews."""
    connections = {}
    for label, engine, shards in ENGINE_SPECS:
        connections[label] = _build(_connect(engine, shards))
    yield connections
    for connection in connections.values():
        connection.close()


def test_shard_counts_are_really_pinned(view_engines):
    for label, shards in (("sqlite-partition@2", 2), ("sqlite-partition@3", 3)):
        backend = view_engines[label].pipeline.planner.backend
        assert backend.shard_count == shards


@pytest.mark.parametrize("sql", QUERIES)
def test_view_reads_agree_across_engines(view_engines, sql):
    outcome = assert_engines_agree(view_engines, sql)
    assert outcome[0] == "ok", outcome


@pytest.mark.parametrize("name", sorted(_UNFOLDED))
def test_matview_read_is_identical_to_unfolded_query(view_engines, name):
    """The tentpole identity, held per engine: a matview read returns
    exactly the rows, order and column names of its defining query."""
    for label, connection in view_engines.items():
        through = connection.execute(f"SELECT * FROM {name}")
        through_rows = through.fetchall()
        through_cols = [entry[0] for entry in through.description]
        direct = connection.execute(_UNFOLDED[name])
        assert through_rows == direct.fetchall(), (label, name)
        assert through_cols == [entry[0] for entry in direct.description], (
            label,
            name,
        )


def test_agreement_survives_identical_dml_burst(view_engines):
    """After the same writes everywhere, incremental maintenance (the
    join and provenance matviews) and stale-recompute (the aggregate)
    must land every engine on the same contents again."""
    for sql in _DML:
        for label, connection in view_engines.items():
            connection.execute(sql)
        # Interleave a read so maintenance output feeds later deltas.
        outcome = assert_engines_agree(view_engines, "SELECT * FROM mv_join")
        assert outcome[0] == "ok", (sql, outcome)
    for sql in QUERIES:
        outcome = assert_engines_agree(view_engines, sql)
        assert outcome[0] == "ok", (sql, outcome)
    for name, unfolded in sorted(_UNFOLDED.items()):
        for label, connection in view_engines.items():
            assert (
                connection.execute(f"SELECT * FROM {name}").fetchall()
                == connection.execute(unfolded).fetchall()
            ), (label, name)


def test_matview_errors_agree_across_engines(view_engines):
    """Refusals are part of the surface: every engine raises the same
    error type and message for DML against a matview."""
    outcomes = run_engines(view_engines, "DELETE FROM mv_join WHERE id = 1")
    baseline = next(iter(outcomes.values()))
    assert baseline[0] == "error"
    assert all(outcome == baseline for outcome in outcomes.values()), outcomes
