"""Curated int64-boundary regressions: exact unbounded-integer
semantics must be identical across the row, vectorized and sqlite
engines.

The two bugs these pin down (both observed against the sqlite backend
before the interval-analysis rewrite and the row-engine rescue):

* Silent precision loss: ``SELECT -x - 9223372036854775807`` over
  ``x = 9223372036854775806`` returned ``-1.8446744073709552e+19``
  (SQLite promotes overflowing integer arithmetic to REAL) where the
  row and vectorized engines return the exact ``-18446744073709551613``.
* Integer SUM overflow: ``SELECT sum(x)`` past int64 raised
  ``ExecutionError: sqlite backend: integer overflow`` where the other
  engines return the exact bignum ``9223372036854775808``.
"""

from __future__ import annotations

import pytest

import repro
from harness import assert_engines_agree
from querygen import generate_query
from repro.backend import differential_engines

ENGINES = differential_engines()

INT64_MAX = 9223372036854775807
INT64_MIN = -9223372036854775808


@pytest.fixture(scope="module")
def boundary_pairs():
    """{engine: Connection} over one table of int64-boundary rows."""
    connections = {}
    for engine in ENGINES:
        conn = repro.connect(engine=engine)
        conn.run("CREATE TABLE big (k int, x int)")
        conn.load_rows(
            "big",
            [
                (1, INT64_MAX - 1),
                (2, INT64_MAX),
                (3, INT64_MIN),
                (4, INT64_MIN + 1),
                (5, 1),
                (6, None),
            ],
        )
        connections[engine] = conn
    return connections


def test_arithmetic_overflow_stays_exact(boundary_pairs):
    # The first ISSUE regression: silent REAL promotion on sqlite.
    outcome = assert_engines_agree(
        boundary_pairs,
        "SELECT -x - 9223372036854775807 AS y FROM big WHERE k = 1",
    )
    assert outcome[:2] == ("ok", [(-18446744073709551613,)])


def test_integer_sum_overflow_returns_exact_bignum(boundary_pairs):
    # The second ISSUE regression: ExecutionError on sqlite.
    outcome = assert_engines_agree(
        boundary_pairs, "SELECT sum(x) AS s FROM big WHERE k IN (2, 5)"
    )
    assert outcome[:2] == ("ok", [(9223372036854775808,)])


@pytest.mark.parametrize(
    "sql",
    [
        # Every +/-/* near the boundary, both directions.
        "SELECT x + 9223372036854775806 FROM big",
        "SELECT x - 9223372036854775808 FROM big",
        "SELECT x * 9223372036854775807 FROM big WHERE k IN (2, 5, 6)",
        "SELECT -x FROM big",
        # INT64_MIN / -1 = 2^63, the one division that escapes int64.
        "SELECT x / -1 FROM big",
        # A constant SQLite would lex as REAL.
        "SELECT 9223372036854775808 FROM big WHERE k = 5",
        "SELECT x FROM big WHERE x < 9223372036854775808",
        "SELECT x FROM big WHERE x > -9223372036854775808",
        # Aggregates over boundary-shifted values (sum/avg/min/max).
        "SELECT sum(x + 9223372036854775806) FROM big",
        "SELECT avg(x) FROM big",
        "SELECT avg(x + 9223372036854775806) FROM big",
        "SELECT min(x), max(x) FROM big",
        "SELECT k % 2 AS g, sum(x), avg(x) FROM big GROUP BY k % 2",
        # Boundary values through joins, DISTINCT, ORDER BY.
        "SELECT DISTINCT a.x FROM big a JOIN big b ON a.x = b.x",
        "SELECT x * 3 AS y FROM big ORDER BY y DESC",
        # Bounded subexpressions stay native: interval analysis proves
        # (x % 1000) + 7 cannot overflow.
        "SELECT (x % 1000) + 7 FROM big WHERE x IS NOT NULL",
    ],
)
def test_boundary_query_agrees(boundary_pairs, sql):
    assert_engines_agree(boundary_pairs, sql)


def test_bignum_results_survive_reuse(boundary_pairs):
    """The rescue path must not poison the cached plan: a query that
    escapes to the row engine once must keep working (and agreeing)
    on repeated executions and after interleaved in-range queries."""
    overflow = "SELECT x * 2 AS y FROM big WHERE k = 2"
    in_range = "SELECT x FROM big WHERE k = 5"
    for _ in range(3):
        assert_engines_agree(boundary_pairs, overflow)
        assert_engines_agree(boundary_pairs, in_range)


def test_corpus_contains_boundary_constants():
    """The generated differential corpus actually exercises the int64
    boundary in arithmetic and aggregate positions."""
    corpus = [
        generate_query(seed, workload)
        for workload in ("forum", "tpch")
        for seed in range(180)
    ]
    boundary = [sql for sql in corpus if "922337203685477580" in sql]
    assert boundary, "no boundary constants in the corpus"
    assert any(
        "sum(" in sql or "avg(" in sql for sql in boundary
    ), "no boundary constants in aggregate position"
