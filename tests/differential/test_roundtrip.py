"""SQL round-trip property: the deparser is trusted output.

The Perm browser's pane 2 shows the rewritten query as SQL
(:func:`repro.algebra.to_sql.algebra_to_sql`); the paper's system
executes exactly that deparsed text on the host DBMS. For the deparser
to be trustworthy, every plan it prints must (a) re-parse through
:mod:`repro.sql.parser` and (b) execute to the same relation as the
original plan.

This property is checked for the whole generated corpus: both the
*analyzed* plan (the query as written) and the *provenance-rewritten*
plan (what pane 2 actually displays). Row order may legally differ —
re-planning the deparsed nested-subselect form can reorder operators —
so rows are compared as multisets; schema (names and order) must match
exactly.
"""

from __future__ import annotations

import pytest

from querygen import generate_query
from repro.algebra.to_sql import algebra_to_sql

CORE_SEEDS = range(120)
EXHAUSTIVE_SEEDS = range(120, 180)
WORKLOADS = ("forum", "tpch")


def _roundtrip(connection, sql: str) -> None:
    try:
        profile = connection.profile(sql)
    except Exception:
        pytest.skip("original query does not execute (generator fringe)")
    assert profile.rewritten is not None and profile.result is not None

    for plan, expected in (
        (profile.analyzed, connection.run(sql)),
        (profile.rewritten, profile.result),
    ):
        regenerated = algebra_to_sql(plan)
        again = connection.run(regenerated)
        assert again.schema.names == expected.schema.names, (
            f"deparsed SQL changed the schema:\n  {sql}\n  -> {regenerated}"
        )
        assert sorted(again.rows, key=repr) == sorted(expected.rows, key=repr), (
            f"deparsed SQL changed the result:\n  {sql}\n  -> {regenerated}"
        )


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("seed", CORE_SEEDS)
def test_generated_query_roundtrips(engine_pairs, workload, seed):
    _roundtrip(engine_pairs[workload]["row"], generate_query(seed, workload))


@pytest.mark.exhaustive
@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("seed", EXHAUSTIVE_SEEDS)
def test_generated_query_roundtrips_exhaustive(engine_pairs, workload, seed):
    _roundtrip(engine_pairs[workload]["row"], generate_query(seed, workload))
