"""Algebra-layer tests: schema inference, tree utilities, rendering and
the algebra->SQL deparser (checked by re-parsing and re-executing)."""

from __future__ import annotations

import pytest

from repro import connect
from repro.algebra import expressions as ax
from repro.algebra import nodes as an
from repro.algebra.render import render_side_by_side, render_tree
from repro.algebra.to_sql import algebra_to_sql, expr_to_sql
from repro.algebra.tree import copy_tree, count_nodes, transform_tree, tree_depth, walk_tree
from repro.analyzer import Analyzer
from repro.catalog.schema import schema_of
from repro.datatypes import SQLType as T
from repro.errors import AnalyzeError
from repro.sql import ast, parse_statement


@pytest.fixture
def db():
    session = connect()
    session.run(
        """
        CREATE TABLE t (a int, b text, c float);
        CREATE TABLE s (x int, y text);
        INSERT INTO t VALUES (1, 'p', 0.5), (2, 'q', 1.5), (3, 'p', 2.5);
        INSERT INTO s VALUES (1, 'one'), (3, 'three');
        """
    )
    return session


def analyzed(db, sql):
    statement = parse_statement(sql)
    assert isinstance(statement, ast.QueryStatement)
    return Analyzer(db.catalog).analyze_query(statement.query)


class TestSchemaInference:
    def test_scan_qualifies_attributes(self, db):
        node = an.Scan("t", "t", db.catalog.table("t").schema)
        assert node.schema.names == ["t.a", "t.b", "t.c"]

    def test_project_types(self, db):
        scan = an.Scan("t", "t", db.catalog.table("t").schema)
        project = an.Project(
            scan,
            [
                ("n", ax.BinOp("+", ax.Column("t.a"), ax.Const.of(1))),
                ("f", ax.BinOp("+", ax.Column("t.a"), ax.Column("t.c"))),
                ("s", ax.BinOp("||", ax.Column("t.b"), ax.Const.of("!"))),
            ],
        )
        assert project.schema.types == [T.INT, T.FLOAT, T.TEXT]

    def test_join_concat_schema(self, db):
        left = an.Scan("t", "t", db.catalog.table("t").schema)
        right = an.Scan("s", "s", db.catalog.table("s").schema)
        join = an.Join(left, right, "cross", None)
        assert join.schema.names == ["t.a", "t.b", "t.c", "s.x", "s.y"]

    def test_aggregate_output_types(self, db):
        scan = an.Scan("t", "t", db.catalog.table("t").schema)
        agg = an.Aggregate(
            scan,
            [("g", ax.Column("t.b"))],
            [
                ("cnt", ax.AggExpr("count", None)),
                ("total", ax.AggExpr("sum", ax.Column("t.a"))),
                ("mean", ax.AggExpr("avg", ax.Column("t.a"))),
                ("fsum", ax.AggExpr("sum", ax.Column("t.c"))),
            ],
        )
        assert agg.schema.types == [T.TEXT, T.INT, T.INT, T.FLOAT, T.FLOAT]

    def test_setop_unifies_types(self, db):
        left = an.Project(an.SingleRow(), [("v", ax.Const.of(1))])
        right = an.Project(an.SingleRow(), [("v", ax.Const.of(2.5))])
        union = an.SetOpNode(left, right, "union", False)
        assert union.schema.types == [T.FLOAT]

    def test_join_kind_validation(self, db):
        scan = an.Scan("t", "t", db.catalog.table("t").schema)
        with pytest.raises(AnalyzeError):
            an.Join(scan, scan, "sideways", None)
        with pytest.raises(AnalyzeError):
            an.Join(scan, scan, "left", None)  # outer joins need a condition

    def test_setop_arity_validation(self, db):
        one = an.Project(an.SingleRow(), [("v", ax.Const.of(1))])
        two = an.Project(an.SingleRow(), [("v", ax.Const.of(1)), ("w", ax.Const.of(2))])
        with pytest.raises(AnalyzeError):
            an.SetOpNode(one, two, "union", False)


class TestTreeUtilities:
    def test_walk_and_count(self, db):
        node = analyzed(db, "SELECT a FROM t WHERE b = 'p'")
        kinds = [type(n).__name__ for n in walk_tree(node)]
        assert kinds[0] == "Project"
        assert "Scan" in kinds
        assert count_nodes(node) == len(kinds)

    def test_count_includes_subplans(self, db):
        node = analyzed(db, "SELECT a FROM t WHERE a IN (SELECT x FROM s)")
        assert count_nodes(node) > count_nodes(analyzed(db, "SELECT a FROM t"))

    def test_copy_tree_is_deep_for_nodes(self, db):
        node = analyzed(db, "SELECT a FROM t WHERE b = 'p'")
        clone = copy_tree(node)
        assert clone is not node
        assert clone.schema.names == node.schema.names

    def test_transform_tree_replaces(self, db):
        node = analyzed(db, "SELECT a FROM t WHERE b = 'p'")

        def drop_selects(candidate):
            if isinstance(candidate, an.Select):
                return candidate.child
            return None

        stripped = transform_tree(node, drop_selects)
        assert not any(isinstance(n, an.Select) for n in walk_tree(stripped))

    def test_tree_depth(self, db):
        assert tree_depth(analyzed(db, "SELECT a FROM t")) >= 2


class TestRendering:
    def test_render_tree_shows_operators(self, db):
        node = analyzed(db, "SELECT b, count(*) FROM t GROUP BY b")
        text = render_tree(node)
        assert "α[" in text and "Scan(t)" in text and "Π[" in text

    def test_render_includes_sublinks(self, db):
        node = analyzed(db, "SELECT a FROM t WHERE a IN (SELECT x FROM s)")
        assert "sublink:" in render_tree(node)

    def test_render_schema_annotation(self, db):
        node = analyzed(db, "SELECT a FROM t")
        assert ":: (a)" in render_tree(node, show_schema=True)

    def test_side_by_side(self):
        merged = render_side_by_side("a\nbb", "ccc", headers=("L", "R"))
        lines = merged.splitlines()
        assert lines[0].startswith("L") and "R" in lines[0]
        assert len(lines) == 4


class TestAlgebraToSql:
    """The deparsed SQL must re-parse and produce identical results —
    this is what makes browser pane 2 trustworthy."""

    QUERIES = [
        "SELECT a, b FROM t WHERE a > 1",
        "SELECT b, count(*) AS n FROM t GROUP BY b HAVING count(*) > 1",
        "SELECT t.a, s.y FROM t JOIN s ON t.a = s.x",
        "SELECT t.a FROM t LEFT JOIN s ON t.a = s.x WHERE s.y IS NULL",
        "SELECT a FROM t UNION SELECT x FROM s",
        "SELECT DISTINCT b FROM t ORDER BY b DESC",
        "SELECT a FROM t ORDER BY a LIMIT 2 OFFSET 1",
        "SELECT a FROM t WHERE a IN (SELECT x FROM s)",
        "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM s WHERE s.x = t.a)",
        "SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END AS size FROM t",
        "SELECT sum(a * 2) FROM t",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_roundtrip_execution(self, db, sql):
        node = analyzed(db, sql)
        regenerated = algebra_to_sql(node)
        direct = db.run(sql)
        via_deparse = db.run(regenerated)
        assert sorted(direct.rows, key=repr) == sorted(via_deparse.rows, key=repr)

    def test_rewritten_provenance_sql_roundtrips(self, db):
        sql = "SELECT PROVENANCE a, b FROM t WHERE a > 1"
        profile = db.profile(sql)
        regenerated = algebra_to_sql(profile.rewritten)
        again = db.run(regenerated)
        assert sorted(profile.result.rows, key=repr) == sorted(again.rows, key=repr)

    def test_expr_to_sql_forms(self):
        assert expr_to_sql(ax.Const.of(None)) == "NULL"
        assert expr_to_sql(ax.Const(None, T.INT)) == "CAST(NULL AS int)"
        assert expr_to_sql(ax.Const.of("it's")) == "'it''s'"
        assert expr_to_sql(ax.Column("a.b")) == '"a.b"'
        assert (
            expr_to_sql(ax.DistinctTest(ax.Column("x"), ax.Column("y"), negated=True))
            == "(x IS NOT DISTINCT FROM y)"
        )
