"""Perm browser tests: the five Figure 4 panes and the demo's
interactive controls."""

from __future__ import annotations

import pytest

from repro.browser import PermBrowser
from repro.workloads.forum import SQLPLE_AGGREGATION, create_forum_db


@pytest.fixture
def browser():
    return PermBrowser(create_forum_db())


class TestPanes:
    def test_view_has_all_panes(self, browser):
        view = browser.run("SELECT PROVENANCE mId, text FROM messages")
        assert "PROVENANCE" in view.input_sql
        assert "prov_messages_mid" in view.rewritten_sql
        assert "Scan(messages)" in view.original_tree
        assert "prov_messages" in view.rewritten_tree
        assert len(view.result) == 2

    def test_render_layout(self, browser):
        screen = browser.show("SELECT PROVENANCE mId, text FROM messages")
        for marker in (
            "query input (1)",
            "rewritten SQL (2)",
            "algebra trees (3: original | 4: rewritten)",
            "result (5)",
        ):
            assert marker in screen

    def test_aggregation_query_panes(self, browser):
        view = browser.run(SQLPLE_AGGREGATION)
        assert "α[" in view.original_tree
        assert "⟕" in view.rewritten_tree  # the aggregation rule's left join
        assert "(4 rows)" in view.result.format()

    def test_result_truncation(self, browser):
        screen = browser.show("SELECT PROVENANCE mId, text FROM messages", max_rows=1)
        assert "1 more row" in screen


class TestControls:
    def test_strategy_toggles(self, browser):
        browser.set_union_strategy("joinback")
        view = browser.run(
            "SELECT PROVENANCE mId, text FROM messages UNION SELECT mId, text FROM imports"
        )
        assert len(view.result) == 4
        browser.set_union_strategy("pad")
        browser.set_sublink_strategy("keep")
        browser.set_difference_semantics("left-only")

    def test_invalid_strategy_rejected(self, browser):
        with pytest.raises(ValueError):
            browser.set_union_strategy("magic")
        with pytest.raises(ValueError):
            browser.set_sublink_strategy("magic")
        with pytest.raises(ValueError):
            browser.set_difference_semantics("magic")

    def test_contribution_semantics_choice_via_sql(self, browser):
        view = browser.run(
            "SELECT PROVENANCE ON CONTRIBUTION (COPY PARTIAL) text FROM messages"
        )
        row = view.result.rows[0]
        assert row[0] == row[2]  # text copied
        assert row[1] is None  # mId not copied
