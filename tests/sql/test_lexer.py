"""Lexer unit tests: token kinds, positions, escapes, comments, errors."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.sql.lexer import TokenKind, tokenize


def kinds(sql):
    return [(t.kind, t.text) for t in tokenize(sql)[:-1]]


class TestBasicTokens:
    def test_keywords_case_insensitive(self):
        for text in ("SELECT", "select", "SeLeCt"):
            token = tokenize(text)[0]
            assert token.kind is TokenKind.KEYWORD
            assert token.upper == "SELECT"

    def test_identifier(self):
        token = tokenize("my_table1")[0]
        assert token.kind is TokenKind.IDENT
        assert token.text == "my_table1"

    def test_sql_ple_keywords(self):
        for word in ("PROVENANCE", "BASERELATION", "CONTRIBUTION", "INFLUENCE", "COPY"):
            assert tokenize(word)[0].kind is TokenKind.KEYWORD

    def test_eof_always_last(self):
        assert tokenize("")[-1].kind is TokenKind.EOF
        assert tokenize("select 1")[-1].kind is TokenKind.EOF


class TestNumbers:
    @pytest.mark.parametrize(
        "text", ["0", "42", "3.14", ".5", "1e10", "1.5e-3", "2E+4"]
    )
    def test_number_forms(self, text):
        token = tokenize(text)[0]
        assert token.kind is TokenKind.NUMBER
        assert token.text == text

    def test_number_then_dot_access(self):
        # "1.e" should not swallow the identifier (no exponent digits).
        tokens = tokenize("1e")
        assert tokens[0].kind is TokenKind.NUMBER
        assert tokens[1].kind is TokenKind.IDENT


class TestStrings:
    def test_simple_string(self):
        token = tokenize("'hello'")[0]
        assert token.kind is TokenKind.STRING
        assert token.text == "hello"

    def test_quote_escape(self):
        assert tokenize("'don''t'")[0].text == "don't"

    def test_empty_string(self):
        assert tokenize("''")[0].text == ""

    def test_unterminated_string(self):
        with pytest.raises(ParseError, match="unterminated string"):
            tokenize("'oops")

    def test_newline_inside_string(self):
        assert tokenize("'a\nb'")[0].text == "a\nb"


class TestQuotedIdentifiers:
    def test_quoted_identifier(self):
        token = tokenize('"Weird Name"')[0]
        assert token.kind is TokenKind.IDENT
        assert token.text == "Weird Name"

    def test_quoted_keyword_is_identifier(self):
        assert tokenize('"select"')[0].kind is TokenKind.IDENT

    def test_doubled_quote_escape(self):
        assert tokenize('"a""b"')[0].text == 'a"b'

    def test_unterminated(self):
        with pytest.raises(ParseError, match="unterminated quoted identifier"):
            tokenize('"oops')

    def test_empty_quoted_identifier(self):
        with pytest.raises(ParseError, match="empty quoted identifier"):
            tokenize('""')


class TestOperators:
    def test_multi_char_operators_greedy(self):
        assert kinds("a<=b") == [
            (TokenKind.IDENT, "a"),
            (TokenKind.OPERATOR, "<="),
            (TokenKind.IDENT, "b"),
        ]
        assert [t for _, t in kinds("a<>b")] == ["a", "<>", "b"]
        assert [t for _, t in kinds("a||b")] == ["a", "||", "b"]
        assert [t for _, t in kinds("x::int")] == ["x", "::", "int"]

    def test_unknown_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("a @ b")

    def test_positional_placeholder(self):
        tokens = tokenize("a = ?")
        assert (tokens[2].kind, tokens[2].text) == (TokenKind.PARAM, "?")

    def test_named_placeholder(self):
        tokens = tokenize("a = :lo AND b = :hi_2")
        params = [t.text for t in tokens if t.kind is TokenKind.PARAM]
        assert params == [":lo", ":hi_2"]

    def test_double_colon_is_still_a_cast(self):
        tokens = tokenize("a::int")
        assert [t.text for t in tokens[:3]] == ["a", "::", "int"]
        assert all(t.kind is not TokenKind.PARAM for t in tokens)


class TestCommentsAndPositions:
    def test_line_comment(self):
        assert [t for _, t in kinds("select -- comment\n 1")] == ["select", "1"]

    def test_block_comment(self):
        assert [t for _, t in kinds("select /* a\nb */ 1")] == ["select", "1"]

    def test_unterminated_block_comment(self):
        with pytest.raises(ParseError, match="unterminated block comment"):
            tokenize("select /* oops")

    def test_positions(self):
        tokens = tokenize("select\n  foo")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)
