"""Parser unit tests: clause coverage, precedence, SQL-PLE, DDL/DML,
error reporting."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.sql import ast, parse_expression, parse_sql, parse_statement


def q(sql: str) -> ast.QueryExpr:
    statement = parse_statement(sql)
    assert isinstance(statement, ast.QueryStatement)
    return statement.query


class TestSelectClauses:
    def test_minimal(self):
        select = q("SELECT 1")
        assert isinstance(select, ast.Select)
        assert select.from_items == []
        assert isinstance(select.items[0].expression, ast.Literal)

    def test_all_clauses(self):
        select = q(
            "SELECT DISTINCT a, b AS bee FROM t WHERE a > 1 "
            "GROUP BY a HAVING count(*) > 2 ORDER BY a DESC LIMIT 10 OFFSET 5"
        )
        assert select.distinct
        assert select.items[1].alias == "bee"
        assert select.where is not None
        assert len(select.group_by) == 1
        assert select.having is not None
        assert select.order_by[0].descending
        assert isinstance(select.limit, ast.Literal) and select.limit.value == 10
        assert isinstance(select.offset, ast.Literal) and select.offset.value == 5

    def test_star_and_qualified_star(self):
        select = q("SELECT *, t.* FROM t")
        assert isinstance(select.items[0].expression, ast.Star)
        star = select.items[1].expression
        assert isinstance(star, ast.Star) and star.qualifier == "t"

    def test_implicit_alias_without_as(self):
        select = q("SELECT a alias_name FROM t")
        assert select.items[0].alias == "alias_name"

    def test_order_by_nulls_placement(self):
        select = q("SELECT a FROM t ORDER BY a ASC NULLS FIRST, b DESC NULLS LAST")
        assert select.order_by[0].nulls_first is True
        assert select.order_by[1].nulls_first is False


class TestJoins:
    def test_join_kinds(self):
        for sql_kind, kind in [
            ("JOIN", "inner"),
            ("INNER JOIN", "inner"),
            ("LEFT JOIN", "left"),
            ("LEFT OUTER JOIN", "left"),
            ("RIGHT JOIN", "right"),
            ("FULL OUTER JOIN", "full"),
        ]:
            select = q(f"SELECT * FROM a {sql_kind} b ON a.x = b.y")
            join = select.from_items[0]
            assert isinstance(join, ast.JoinRef)
            assert join.kind == kind

    def test_cross_join_has_no_condition(self):
        join = q("SELECT * FROM a CROSS JOIN b").from_items[0]
        assert join.kind == "cross" and join.condition is None

    def test_using(self):
        join = q("SELECT * FROM a JOIN b USING (x, y)").from_items[0]
        assert join.using == ["x", "y"]

    def test_natural(self):
        join = q("SELECT * FROM a NATURAL JOIN b").from_items[0]
        assert join.natural

    def test_join_requires_on_or_using(self):
        with pytest.raises(ParseError, match="expected ON or USING"):
            q("SELECT * FROM a JOIN b")

    def test_left_deep_chain(self):
        join = q("SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y").from_items[0]
        assert isinstance(join, ast.JoinRef)
        assert isinstance(join.left, ast.JoinRef)

    def test_comma_list(self):
        select = q("SELECT * FROM a, b, c")
        assert len(select.from_items) == 3

    def test_derived_table(self):
        select = q("SELECT * FROM (SELECT a FROM t) AS sub (x)")
        sub = select.from_items[0]
        assert isinstance(sub, ast.SubqueryRef)
        assert sub.alias == "sub" and sub.column_aliases == ["x"]


class TestSetOperations:
    def test_union_chain_left_assoc(self):
        setop = q("SELECT a FROM t UNION SELECT b FROM s UNION SELECT c FROM u")
        assert isinstance(setop, ast.SetOp)
        assert isinstance(setop.left, ast.SetOp)

    def test_intersect_binds_tighter(self):
        setop = q("SELECT a FROM t UNION SELECT b FROM s INTERSECT SELECT c FROM u")
        assert setop.op == "union"
        assert isinstance(setop.right, ast.SetOp)
        assert setop.right.op == "intersect"

    def test_union_all(self):
        assert q("SELECT a FROM t UNION ALL SELECT b FROM s").all

    def test_order_by_applies_to_whole_setop(self):
        setop = q("SELECT a FROM t UNION SELECT b FROM s ORDER BY 1 LIMIT 3")
        assert isinstance(setop, ast.SetOp)
        assert len(setop.order_by) == 1
        assert setop.limit is not None

    def test_parenthesized_operand(self):
        setop = q("(SELECT a FROM t ORDER BY a LIMIT 1) UNION SELECT b FROM s")
        assert isinstance(setop.left, ast.Select)
        assert setop.left.limit is not None


class TestExpressions:
    def test_precedence_or_and(self):
        expression = parse_expression("a OR b AND c")
        assert isinstance(expression, ast.BinaryOp) and expression.op == "or"

    def test_precedence_arithmetic(self):
        expression = parse_expression("1 + 2 * 3")
        assert expression.op == "+"
        assert expression.right.op == "*"

    def test_not_binds_looser_than_comparison(self):
        expression = parse_expression("NOT a = b")
        assert isinstance(expression, ast.UnaryOp) and expression.op == "not"
        assert isinstance(expression.operand, ast.BinaryOp)

    def test_between(self):
        expression = parse_expression("x BETWEEN 1 AND 10")
        assert isinstance(expression, ast.Between)

    def test_not_between(self):
        expression = parse_expression("x NOT BETWEEN 1 AND 10")
        assert isinstance(expression, ast.Between) and expression.negated

    def test_in_list_and_subquery(self):
        in_list = parse_expression("x IN (1, 2, 3)")
        assert isinstance(in_list, ast.InList) and len(in_list.items) == 3
        in_sub = parse_expression("x NOT IN (SELECT y FROM t)")
        assert isinstance(in_sub, ast.InSubquery) and in_sub.negated

    def test_is_null_and_is_distinct(self):
        assert isinstance(parse_expression("x IS NULL"), ast.IsNull)
        expression = parse_expression("x IS NOT NULL")
        assert isinstance(expression, ast.IsNull) and expression.negated
        distinct = parse_expression("x IS NOT DISTINCT FROM y")
        assert isinstance(distinct, ast.IsDistinct) and distinct.negated

    def test_like_and_negation(self):
        like = parse_expression("name LIKE 'a%'")
        assert isinstance(like, ast.BinaryOp) and like.op == "like"
        negated = parse_expression("name NOT LIKE 'a%'")
        assert isinstance(negated, ast.UnaryOp) and negated.op == "not"

    def test_case_forms(self):
        searched = parse_expression("CASE WHEN a THEN 1 ELSE 2 END")
        assert isinstance(searched, ast.Case) and searched.operand is None
        simple = parse_expression("CASE x WHEN 1 THEN 'a' END")
        assert simple.operand is not None and simple.else_result is None

    def test_cast_forms(self):
        assert isinstance(parse_expression("CAST(x AS int)"), ast.Cast)
        postfix = parse_expression("x::text")
        assert isinstance(postfix, ast.Cast) and postfix.type_name == "text"

    def test_quantified_comparison(self):
        expression = parse_expression("x > ALL (SELECT y FROM t)")
        assert isinstance(expression, ast.QuantifiedComparison)
        assert expression.quantifier == "all"
        some = parse_expression("x = SOME (SELECT y FROM t)")
        assert some.quantifier == "any"

    def test_exists(self):
        assert isinstance(parse_expression("EXISTS (SELECT 1 FROM t)"), ast.Exists)

    def test_function_calls(self):
        call = parse_expression("count(DISTINCT x)")
        assert isinstance(call, ast.FuncCall) and call.distinct
        star = parse_expression("count(*)")
        assert star.star
        assert parse_expression("coalesce(a, b, 0)").name == "coalesce"

    def test_scalar_subquery(self):
        assert isinstance(parse_expression("(SELECT max(x) FROM t)"), ast.ScalarSubquery)

    def test_unary_minus(self):
        expression = parse_expression("-x + 1")
        assert expression.op == "+"
        assert isinstance(expression.left, ast.UnaryOp)

    def test_bang_equals_normalized(self):
        assert parse_expression("a != b").op == "<>"


class TestSqlPle:
    def test_select_provenance_default_influence(self):
        select = q("SELECT PROVENANCE a FROM t")
        assert select.provenance is not None
        assert select.provenance.contribution == "influence"

    def test_on_contribution_variants(self):
        assert q(
            "SELECT PROVENANCE ON CONTRIBUTION (INFLUENCE) a FROM t"
        ).provenance.contribution == "influence"
        assert q(
            "SELECT PROVENANCE ON CONTRIBUTION (COPY) a FROM t"
        ).provenance.contribution == "copy partial"
        assert q(
            "SELECT PROVENANCE ON CONTRIBUTION (COPY PARTIAL) a FROM t"
        ).provenance.contribution == "copy partial"
        assert q(
            "SELECT PROVENANCE ON CONTRIBUTION (COPY COMPLETE) a FROM t"
        ).provenance.contribution == "copy complete"

    def test_unknown_contribution_rejected(self):
        with pytest.raises(ParseError, match="unknown contribution"):
            q("SELECT PROVENANCE ON CONTRIBUTION (MAGIC) a FROM t")

    def test_column_named_provenance_still_works(self):
        select = q("SELECT provenance FROM t")
        assert select.provenance is None
        assert select.items[0].expression.parts == ("provenance",)

    def test_provenance_column_with_qualifier(self):
        select = q("SELECT t.provenance, provenance.x FROM t, provenance")
        assert select.provenance is None

    def test_baserelation_modifier(self):
        table = q("SELECT PROVENANCE a FROM v BASERELATION").from_items[0]
        assert table.baserelation

    def test_provenance_attrs_modifier(self):
        table = q("SELECT PROVENANCE a FROM t PROVENANCE (pa, pb)").from_items[0]
        assert table.provenance_attrs == ["pa", "pb"]

    def test_modifiers_on_subquery(self):
        sub = q(
            "SELECT PROVENANCE a FROM (SELECT a, pa FROM t) AS s BASERELATION PROVENANCE (pa)"
        ).from_items[0]
        assert isinstance(sub, ast.SubqueryRef)
        assert sub.baserelation and sub.provenance_attrs == ["pa"]


class TestStatements:
    def test_create_table(self):
        statement = parse_statement(
            "CREATE TABLE t (a int, b varchar(10), c double precision)"
        )
        assert isinstance(statement, ast.CreateTable)
        assert [c.name for c in statement.columns] == ["a", "b", "c"]
        assert statement.columns[2].type_name == "double precision"

    def test_create_table_if_not_exists(self):
        statement = parse_statement("CREATE TABLE IF NOT EXISTS t (a int)")
        assert statement.if_not_exists

    def test_create_table_as(self):
        statement = parse_statement("CREATE TABLE t AS SELECT 1 AS one")
        assert isinstance(statement, ast.CreateTableAs)

    def test_create_view_and_or_replace(self):
        statement = parse_statement("CREATE OR REPLACE VIEW v AS SELECT a FROM t")
        assert isinstance(statement, ast.CreateView) and statement.or_replace

    def test_drop(self):
        statement = parse_statement("DROP TABLE IF EXISTS t")
        assert isinstance(statement, ast.DropRelation)
        assert statement.kind == "table" and statement.if_exists
        assert parse_statement("DROP VIEW v").kind == "view"

    def test_insert_values(self):
        statement = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(statement, ast.Insert)
        assert statement.columns == ["a", "b"]
        assert len(statement.rows) == 2

    def test_insert_query(self):
        statement = parse_statement("INSERT INTO t SELECT a FROM s")
        assert statement.rows is None and statement.query is not None

    def test_delete_update(self):
        delete = parse_statement("DELETE FROM t WHERE a = 1")
        assert isinstance(delete, ast.Delete) and delete.where is not None
        update = parse_statement("UPDATE t SET a = 2, b = b + 1 WHERE a = 1")
        assert isinstance(update, ast.Update) and len(update.assignments) == 2

    def test_explain_modes(self):
        assert parse_statement("EXPLAIN REWRITE SELECT 1").mode == "rewrite"
        assert parse_statement("EXPLAIN ALGEBRA SELECT 1").mode == "algebra"
        assert parse_statement("EXPLAIN SELECT 1").mode == "plan"

    def test_multiple_statements(self):
        statements = parse_sql("SELECT 1; SELECT 2;; SELECT 3")
        assert len(statements) == 3

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError, match="unexpected input after statement"):
            parse_sql("SELECT 1 garbage garbage")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as info:
            parse_sql("SELECT\n  FROM t")
        assert info.value.line == 2
