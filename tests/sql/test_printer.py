"""Printer tests: formatting and parse->print->parse->print fixpoints,
including hypothesis-generated random query shapes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import format_statement, parse_statement


FIXPOINT_CASES = [
    "SELECT 1",
    "SELECT a, b AS bee FROM t WHERE (a > 1)",
    "SELECT DISTINCT a FROM t ORDER BY a DESC NULLS FIRST LIMIT 3 OFFSET 1",
    "SELECT count(*), sum(DISTINCT x) FROM t GROUP BY y HAVING (count(*) > 2)",
    "SELECT * FROM a JOIN b ON (a.x = b.y) LEFT JOIN c ON (b.z = c.z)",
    "SELECT * FROM a NATURAL JOIN b",
    "SELECT * FROM a JOIN b USING (x, y)",
    "SELECT * FROM a CROSS JOIN b",
    "SELECT a FROM t UNION ALL SELECT b FROM s",
    "SELECT a FROM t INTERSECT SELECT b FROM s EXCEPT SELECT c FROM u",
    "SELECT (CASE WHEN (a > 0) THEN 'p' ELSE 'n' END) FROM t",
    "SELECT CAST(a AS int) FROM t",
    "SELECT (x IN (1, 2)) FROM t",
    "SELECT (x IN (SELECT y FROM s)) FROM t",
    "SELECT (EXISTS (SELECT 1 FROM s)) FROM t",
    "SELECT (a BETWEEN 1 AND 2) FROM t",
    "SELECT (a IS NOT DISTINCT FROM b) FROM t",
    "SELECT (a LIKE 'x%') FROM t",
    "SELECT PROVENANCE ON CONTRIBUTION (INFLUENCE) a FROM t",
    "SELECT PROVENANCE ON CONTRIBUTION (COPY PARTIAL) a FROM v BASERELATION",
    "SELECT a FROM t PROVENANCE (pa, pb)",
    "CREATE TABLE t (a int, b text)",
    "CREATE OR REPLACE VIEW v AS SELECT a FROM t",
    "INSERT INTO t (a) VALUES (1), (2)",
    "DELETE FROM t WHERE (a = 1)",
    "UPDATE t SET a = (a + 1) WHERE (b IS NULL)",
    "EXPLAIN REWRITE SELECT PROVENANCE ON CONTRIBUTION (INFLUENCE) a FROM t",
    'SELECT "Mixed Case" FROM "Weird Table"',
]


@pytest.mark.parametrize("sql", FIXPOINT_CASES)
def test_print_parse_fixpoint(sql):
    """print(parse(s)) must be a fixpoint of parse∘print."""
    once = format_statement(parse_statement(sql))
    twice = format_statement(parse_statement(once))
    assert once == twice


# ---------------------------------------------------------------------------
# Property-based: random expression trees survive the round trip
# ---------------------------------------------------------------------------

_ident = st.sampled_from(["a", "b", "c", "t.x", "s.y"])
_literal = st.one_of(
    st.integers(min_value=0, max_value=10_000).map(str),
    st.sampled_from(["'text'", "'it''s'", "NULL", "TRUE", "FALSE", "1.5"]),
)
_atom = st.one_of(_ident, _literal)


def _binary(children):
    ops = st.sampled_from(["+", "-", "*", "=", "<>", "<", ">=", "AND", "OR", "||"])
    return st.tuples(children, ops, children).map(lambda t: f"({t[0]} {t[1]} {t[2]})")


def _unary(children):
    return children.map(lambda c: f"(NOT {c})") | children.map(lambda c: f"(-{c})")


def _predicates(children):
    return st.one_of(
        children.map(lambda c: f"({c} IS NULL)"),
        st.tuples(children, children).map(lambda t: f"({t[0]} IS DISTINCT FROM {t[1]})"),
        st.tuples(children, children, children).map(
            lambda t: f"({t[0]} BETWEEN {t[1]} AND {t[2]})"
        ),
        st.tuples(children, children).map(lambda t: f"({t[0]} IN ({t[1]}, {t[1]}))"),
        st.tuples(children, children, children).map(
            lambda t: f"(CASE WHEN ({t[0]} = {t[1]}) THEN {t[1]} ELSE {t[2]} END)"
        ),
    )


_expression = st.recursive(
    _atom,
    lambda children: st.one_of(_binary(children), _unary(children), _predicates(children)),
    max_leaves=12,
)


@given(expr=_expression)
@settings(max_examples=150, deadline=None)
def test_random_expression_roundtrip(expr):
    sql = f"SELECT {expr} FROM t"
    once = format_statement(parse_statement(sql))
    twice = format_statement(parse_statement(once))
    assert once == twice


@given(
    columns=st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=3, unique=True),
    distinct=st.booleans(),
    where=st.booleans(),
    union=st.booleans(),
    order=st.booleans(),
    limit=st.integers(min_value=0, max_value=5) | st.none(),
)
@settings(max_examples=80, deadline=None)
def test_random_query_shape_roundtrip(columns, distinct, where, union, order, limit):
    sql = "SELECT " + ("DISTINCT " if distinct else "") + ", ".join(columns) + " FROM t"
    if where:
        sql += " WHERE (a > 1)"
    if union:
        sql += " UNION SELECT " + ", ".join(columns) + " FROM s"
    if order:
        sql += " ORDER BY 1 ASC"
    if limit is not None:
        sql += f" LIMIT {limit}"
    once = format_statement(parse_statement(sql))
    twice = format_statement(parse_statement(once))
    assert once == twice
